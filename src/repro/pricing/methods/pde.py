"""Finite-difference (theta-scheme) PDE pricing methods.

The realistic portfolio of the paper prices its down-and-out calls and its
American puts with PDE techniques ("the PDE must be solved with a very thin
time step, namely one time step every 2 days" for the barrier options).

The solver works on a uniform grid in ``x = ln S`` and discretises the
one-dimensional pricing PDE

``V_t + (r - q - sigma(t,S)^2 / 2) V_x + sigma(t,S)^2 / 2 V_xx - r V = 0``

with a theta-scheme in time (``theta = 0.5`` is Crank-Nicolson, ``theta = 1``
fully implicit).  Local-volatility models are supported because the
coefficients are rebuilt at every time step from
:meth:`~repro.pricing.models.base.DiffusionModel1D.local_volatility`.

American exercise is handled either by projection after each time step
(operator splitting, default) or by the Brennan-Schwartz algorithm, which
solves the obstacle problem exactly for put-like obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np
from scipy.linalg import solve_banded

from repro.errors import PricingError
from repro.pricing.methods.base import PricingMethod, PricingResult
from repro.pricing.models.base import DiffusionModel1D, Model
from repro.pricing.products.american import AmericanCall, AmericanPut
from repro.pricing.products.barrier import BarrierOption
from repro.pricing.products.base import ExerciseStyle, Product
from repro.pricing.products.vanilla import DigitalCall, DigitalPut, EuropeanCall, EuropeanPut

__all__ = ["PDEGrid", "PDEEuropean", "PDEBarrier", "PDEAmerican"]


@dataclass(frozen=True)
class PDEGrid:
    """Log-space grid specification.

    Attributes
    ----------
    x:
        Grid in ``ln S`` (uniform).
    s:
        The same grid in spot space, ``exp(x)``.
    dx:
        Grid spacing.
    """

    x: np.ndarray
    s: np.ndarray
    dx: float

    @classmethod
    def build(
        cls,
        spot: float,
        volatility_scale: float,
        maturity: float,
        n_space: int,
        n_std: float = 6.0,
        lower_bound: float | None = None,
        upper_bound: float | None = None,
        anchor: float | None = None,
    ) -> "PDEGrid":
        """Build a log-space grid centred on the spot.

        ``lower_bound`` / ``upper_bound`` clamp the grid in spot space (used
        to align a barrier exactly with the boundary).  ``anchor`` forces a
        grid node to coincide with a specific spot value (e.g. the strike) so
        that payoff kinks fall on nodes.
        """
        if n_space < 10:
            raise PricingError("n_space must be at least 10")
        width = n_std * volatility_scale * np.sqrt(maturity)
        width = max(width, 0.5)
        x_center = np.log(spot)
        x_min = x_center - width
        x_max = x_center + width
        if lower_bound is not None:
            x_min = np.log(lower_bound)
        if upper_bound is not None:
            x_max = np.log(upper_bound)
        if x_max <= x_min:
            raise PricingError("degenerate PDE grid (upper bound below lower bound)")
        x = np.linspace(x_min, x_max, n_space + 1)
        dx = x[1] - x[0]
        if lower_bound is not None or upper_bound is not None:
            # a barrier is pinned to the boundary: do not shift the grid,
            # otherwise the boundary would move off the barrier level
            anchor = None
        if anchor is not None and x_min < np.log(anchor) < x_max:
            # shift the grid so a node coincides with the anchor, keeping the
            # boundaries fixed by rounding the shift to less than one cell
            x_anchor = np.log(anchor)
            idx = int(round((x_anchor - x_min) / dx))
            shift = x_anchor - (x_min + idx * dx)
            if 0 < idx < n_space:
                x = x + shift
                dx = x[1] - x[0]
        return cls(x=x, s=np.exp(x), dx=float(dx))


def _theta_scheme_solve(
    model: DiffusionModel1D,
    maturity: float,
    grid: PDEGrid,
    terminal_values: np.ndarray,
    lower_bc: Callable[[float], float],
    upper_bc: Callable[[float], float],
    n_time: int,
    theta: float,
    obstacle: np.ndarray | None = None,
    american_mode: str = "projected",
) -> np.ndarray:
    """Backward induction of the theta scheme.

    Parameters
    ----------
    terminal_values:
        Payoff evaluated on ``grid.s`` at maturity.
    lower_bc / upper_bc:
        Dirichlet boundary values as functions of the *remaining* time to
        maturity ``tau`` (``tau = maturity`` at valuation date).
    obstacle:
        Early-exercise obstacle (intrinsic values on the grid); ``None`` for
        European products.
    american_mode:
        ``"projected"`` (project on the obstacle after each step) or
        ``"brennan_schwartz"`` (exact tridiagonal obstacle solve, valid for
        put-like obstacles that are binding on the lower end of the grid).

    Returns
    -------
    ndarray
        Option values on ``grid.s`` at the valuation date.
    """
    if not 0.0 <= theta <= 1.0:
        raise PricingError("theta must lie in [0, 1]")
    if n_time < 1:
        raise PricingError("n_time must be >= 1")
    if american_mode not in ("projected", "brennan_schwartz"):
        raise PricingError(f"unknown american_mode: {american_mode!r}")

    dt = maturity / n_time
    x = grid.x
    s = grid.s
    dx = grid.dx
    n = len(x)
    values = terminal_values.astype(float).copy()
    r = model.rate
    q = model.dividend

    interior = slice(1, n - 1)
    s_int = s[interior]

    for step in range(n_time):
        # time at which the *new* values live (going backward)
        t_new = maturity - (step + 1) * dt
        t_old = maturity - step * dt
        tau_new = maturity - t_new

        # coefficients evaluated at the mid-point of the step for CN accuracy
        t_coeff = 0.5 * (t_new + t_old)
        sigma = np.asarray(model.local_volatility(t_coeff, s_int), dtype=float)
        sigma2 = sigma**2
        mu = r - q - 0.5 * sigma2

        lower = 0.5 * sigma2 / dx**2 - 0.5 * mu / dx
        diag = -sigma2 / dx**2 - r
        upper = 0.5 * sigma2 / dx**2 + 0.5 * mu / dx

        # explicit part: rhs = (I + dt (1 - theta) A) V_old  on the interior
        rhs = values[interior] + dt * (1.0 - theta) * (
            lower * values[:-2] + diag * values[interior] + upper * values[2:]
        )

        # boundary values at the new time level
        bc_low = lower_bc(tau_new)
        bc_high = upper_bc(tau_new)

        if theta == 0.0:
            new_interior = rhs
        else:
            # implicit part: (I - dt theta A) V_new = rhs (+ boundary terms)
            sub = -dt * theta * lower
            main = 1.0 - dt * theta * diag
            sup = -dt * theta * upper
            rhs = rhs.copy()
            rhs[0] -= sub[0] * bc_low
            rhs[-1] -= sup[-1] * bc_high

            if obstacle is not None and american_mode == "brennan_schwartz":
                new_interior = _brennan_schwartz(sub, main, sup, rhs, obstacle[interior])
            else:
                ab = np.zeros((3, n - 2))
                ab[0, 1:] = sup[:-1]
                ab[1, :] = main
                ab[2, :-1] = sub[1:]
                new_interior = solve_banded((1, 1), ab, rhs)

        values = np.empty(n)
        values[0] = bc_low
        values[-1] = bc_high
        values[interior] = new_interior

        if obstacle is not None and american_mode == "projected":
            np.maximum(values, obstacle, out=values)
        elif obstacle is not None and american_mode == "brennan_schwartz":
            # boundaries must also respect the obstacle
            values[0] = max(values[0], obstacle[0])
            values[-1] = max(values[-1], obstacle[-1])
    return values


def _brennan_schwartz(
    sub: np.ndarray, main: np.ndarray, sup: np.ndarray, rhs: np.ndarray, obstacle: np.ndarray
) -> np.ndarray:
    """Brennan-Schwartz algorithm for the tridiagonal obstacle problem.

    Solves ``max(M v - rhs, obstacle - v) = 0`` component-wise for an
    M-matrix ``M`` (tridiagonal with ``sub``/``main``/``sup`` diagonals),
    assuming the contact region is connected and located at the lower end of
    the grid -- the situation of an American put.  The forward elimination
    runs from the last row down to the first so that the back-substitution
    (which applies the obstacle) proceeds from low spot values upward.
    """
    n = len(main)
    main_ = main.astype(float).copy()
    rhs_ = rhs.astype(float).copy()
    # eliminate the super-diagonal going from the top (high spot) down
    for i in range(n - 2, -1, -1):
        w = sup[i] / main_[i + 1]
        main_[i] -= w * sub[i + 1]
        rhs_[i] -= w * rhs_[i + 1]
    v = np.empty(n)
    v[0] = max(rhs_[0] / main_[0], obstacle[0])
    for i in range(1, n):
        v[i] = max((rhs_[i] - sub[i] * v[i - 1]) / main_[i], obstacle[i])
    return v


def _interp(s_grid: np.ndarray, values: np.ndarray, spot: float) -> float:
    return float(np.interp(spot, s_grid, values))


def _delta_from_grid(s_grid: np.ndarray, values: np.ndarray, spot: float) -> float:
    """Central-difference delta read off the PDE grid at the spot."""
    idx = int(np.searchsorted(s_grid, spot))
    idx = min(max(idx, 1), len(s_grid) - 2)
    return float(
        (values[idx + 1] - values[idx - 1]) / (s_grid[idx + 1] - s_grid[idx - 1])
    )


class _PDEBase(PricingMethod):
    """Shared configuration of the finite-difference methods."""

    def __init__(
        self,
        n_space: int = 400,
        n_time: int = 200,
        theta: float = 0.5,
        n_std: float = 6.0,
    ):
        if n_space < 10:
            raise PricingError("n_space must be at least 10")
        if n_time < 1:
            raise PricingError("n_time must be at least 1")
        if not 0.0 <= theta <= 1.0:
            raise PricingError("theta must lie in [0, 1]")
        self.n_space = int(n_space)
        self.n_time = int(n_time)
        self.theta = float(theta)
        self.n_std = float(n_std)

    def to_params(self) -> dict[str, Any]:
        return {
            "n_space": self.n_space,
            "n_time": self.n_time,
            "theta": self.theta,
            "n_std": self.n_std,
        }

    def _vol_scale(self, model: DiffusionModel1D) -> float:
        """Representative volatility used only to size the grid."""
        sample = model.local_volatility(0.0, np.asarray([model.spot]))
        return float(np.clip(np.max(sample), 0.05, 2.0))


class PDEEuropean(_PDEBase):
    """Theta-scheme pricer for non-path-dependent European products."""

    method_name = "FD_European"

    def supports(self, model: Model, product: Product) -> bool:
        return (
            isinstance(model, DiffusionModel1D)
            and isinstance(product, (EuropeanCall, EuropeanPut, DigitalCall, DigitalPut))
            and product.exercise == ExerciseStyle.EUROPEAN
        )

    def _price(self, model: DiffusionModel1D, product: Product) -> PricingResult:
        vol = self._vol_scale(model)
        grid = PDEGrid.build(
            model.spot, vol, product.maturity, self.n_space, self.n_std, anchor=product.strike
        )
        terminal = product.terminal_payoff(grid.s)
        is_call_like = isinstance(product, (EuropeanCall, DigitalCall))
        k = product.strike
        r, q = model.rate, model.dividend
        s_lo, s_hi = grid.s[0], grid.s[-1]

        if isinstance(product, EuropeanCall):
            lower_bc = lambda tau: 0.0
            upper_bc = lambda tau: s_hi * np.exp(-q * tau) - k * np.exp(-r * tau)
        elif isinstance(product, EuropeanPut):
            lower_bc = lambda tau: k * np.exp(-r * tau) - s_lo * np.exp(-q * tau)
            upper_bc = lambda tau: 0.0
        elif isinstance(product, DigitalCall):
            lower_bc = lambda tau: 0.0
            upper_bc = lambda tau: np.exp(-r * tau)
        else:  # DigitalPut
            lower_bc = lambda tau: np.exp(-r * tau)
            upper_bc = lambda tau: 0.0

        values = _theta_scheme_solve(
            model,
            product.maturity,
            grid,
            terminal,
            lower_bc,
            upper_bc,
            self.n_time,
            self.theta,
        )
        price = _interp(grid.s, values, model.spot)
        delta = _delta_from_grid(grid.s, values, model.spot)
        return PricingResult(
            price=price,
            delta=delta,
            n_evaluations=self.n_space * self.n_time,
            extra={"grid_points": self.n_space, "time_steps": self.n_time,
                   "is_call_like": is_call_like},
        )


class PDEBarrier(_PDEBase):
    """Theta-scheme pricer for knock-out and knock-in barrier options.

    Knock-out options are priced directly by placing the barrier on the grid
    boundary (Dirichlet condition equal to the rebate).  Knock-in options use
    in/out parity: ``knock_in = vanilla - knock_out`` (exact for zero
    rebate).
    """

    method_name = "FD_Barrier"

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, DiffusionModel1D) and isinstance(product, BarrierOption)

    def _price_knock_out(self, model: DiffusionModel1D, product: BarrierOption) -> PricingResult:
        vol = self._vol_scale(model)
        r, q = model.rate, model.dividend
        k = product.strike
        rebate = product.rebate

        if product.is_down:
            if model.spot <= product.barrier:
                return PricingResult(price=rebate, delta=0.0, n_evaluations=1)
            grid = PDEGrid.build(
                model.spot,
                vol,
                product.maturity,
                self.n_space,
                self.n_std,
                lower_bound=product.barrier,
                anchor=product.strike,
            )
            s_hi = grid.s[-1]
            lower_bc = lambda tau: rebate
            if product.payoff_type == "call":
                upper_bc = lambda tau: s_hi * np.exp(-q * tau) - k * np.exp(-r * tau)
            else:
                upper_bc = lambda tau: 0.0
        else:
            if model.spot >= product.barrier:
                return PricingResult(price=rebate, delta=0.0, n_evaluations=1)
            grid = PDEGrid.build(
                model.spot,
                vol,
                product.maturity,
                self.n_space,
                self.n_std,
                upper_bound=product.barrier,
                anchor=product.strike,
            )
            s_lo = grid.s[0]
            upper_bc = lambda tau: rebate
            if product.payoff_type == "put":
                lower_bc = lambda tau: k * np.exp(-r * tau) - s_lo * np.exp(-q * tau)
            else:
                lower_bc = lambda tau: 0.0

        terminal = product.vanilla_payoff(grid.s)
        # the knocked-out region has already been excluded by the grid bounds
        values = _theta_scheme_solve(
            model,
            product.maturity,
            grid,
            terminal,
            lower_bc,
            upper_bc,
            self.n_time,
            self.theta,
        )
        price = _interp(grid.s, values, model.spot)
        delta = _delta_from_grid(grid.s, values, model.spot)
        return PricingResult(
            price=price, delta=delta, n_evaluations=self.n_space * self.n_time
        )

    def _price(self, model: DiffusionModel1D, product: BarrierOption) -> PricingResult:
        if product.is_knock_out:
            return self._price_knock_out(model, product)
        # knock-in via parity with the vanilla of the same payoff
        knock_out = BarrierOption(
            strike=product.strike,
            maturity=product.maturity,
            barrier=product.barrier,
            barrier_type=("down-out" if product.is_down else "up-out"),
            payoff_type=product.payoff_type,
            rebate=0.0,
        )
        out_result = self._price_knock_out(model, knock_out)
        vanilla_product = (
            EuropeanCall(product.strike, product.maturity)
            if product.payoff_type == "call"
            else EuropeanPut(product.strike, product.maturity)
        )
        vanilla_result = PDEEuropean(
            n_space=self.n_space, n_time=self.n_time, theta=self.theta, n_std=self.n_std
        ).price(model, vanilla_product)
        price = max(vanilla_result.price - out_result.price, 0.0)
        delta = None
        if vanilla_result.delta is not None and out_result.delta is not None:
            delta = vanilla_result.delta - out_result.delta
        return PricingResult(
            price=price,
            delta=delta,
            n_evaluations=2 * self.n_space * self.n_time,
        )


class PDEAmerican(_PDEBase):
    """Theta-scheme pricer for American options with early exercise."""

    method_name = "FD_American"

    def __init__(
        self,
        n_space: int = 400,
        n_time: int = 200,
        theta: float = 0.5,
        n_std: float = 6.0,
        american_mode: str = "brennan_schwartz",
    ):
        super().__init__(n_space=n_space, n_time=n_time, theta=theta, n_std=n_std)
        if american_mode not in ("projected", "brennan_schwartz"):
            raise PricingError(f"unknown american_mode: {american_mode!r}")
        self.american_mode = american_mode

    def to_params(self) -> dict[str, Any]:
        params = super().to_params()
        params["american_mode"] = self.american_mode
        return params

    def supports(self, model: Model, product: Product) -> bool:
        return isinstance(model, DiffusionModel1D) and isinstance(
            product, (AmericanPut, AmericanCall)
        )

    def _price(self, model: DiffusionModel1D, product: Product) -> PricingResult:
        vol = self._vol_scale(model)
        grid = PDEGrid.build(
            model.spot, vol, product.maturity, self.n_space, self.n_std, anchor=product.strike
        )
        terminal = product.terminal_payoff(grid.s)
        obstacle = product.intrinsic_value(grid.s)
        k = product.strike
        r, q = model.rate, model.dividend
        s_lo, s_hi = grid.s[0], grid.s[-1]

        if isinstance(product, AmericanPut):
            # deep in the money the American put is exercised: boundary equals
            # the intrinsic value
            lower_bc = lambda tau: k - s_lo
            upper_bc = lambda tau: 0.0
            mode = self.american_mode
        else:
            lower_bc = lambda tau: 0.0
            upper_bc = lambda tau: s_hi - k
            # Brennan-Schwartz assumes a lower-contact obstacle; for calls the
            # contact region is at high spot, so fall back to projection.
            mode = "projected"

        values = _theta_scheme_solve(
            model,
            product.maturity,
            grid,
            terminal,
            lower_bc,
            upper_bc,
            self.n_time,
            self.theta,
            obstacle=obstacle,
            american_mode=mode,
        )
        price = _interp(grid.s, values, model.spot)
        delta = _delta_from_grid(grid.s, values, model.spot)
        # locate the exercise boundary (largest spot where value == intrinsic)
        exercised = np.isclose(values, obstacle, rtol=1e-10, atol=1e-10) & (obstacle > 0)
        boundary = float(grid.s[exercised].max()) if exercised.any() else float("nan")
        return PricingResult(
            price=price,
            delta=delta,
            n_evaluations=self.n_space * self.n_time,
            extra={"exercise_boundary": boundary},
        )
