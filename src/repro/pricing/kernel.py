"""Stacked-array Monte-Carlo kernel: many groups, one numpy computation.

The batch planner (:mod:`repro.pricing.batch`) already shares one simulated
path set across every member of a group, but the evaluation itself remains a
python-level loop: one ``simulate_paths`` call per group, one payoff call per
member per batch.  This module is the vectorized alternative -- the
``kernel="stacked"`` engine selected through
:meth:`~repro.pricing.methods.montecarlo.MonteCarloEuropean.price_many`,
:class:`~repro.pricing.batch.ProblemBatch` or
:class:`~repro.api.config.RunConfig`:

* **draw cohorts** -- groups of a plan whose methods share (rng kind, seed,
  antithetic flag, path counts, batching) and whose models share a stacked
  sampling scheme consume **one** shared normal draw per batch.  Each group's
  solo simulation would have drawn exactly the same numbers from its own
  fresh generator, so sharing the draw changes nothing;
* **stacked simulation** -- the shared draw is expanded into a
  ``(n_groups, n_paths, n_steps + 1)`` path array in one numpy expression,
  with per-group drift/vol broadcast down the leading axis (see the
  ``stacked_*`` samplers on the model classes).  Models without a stacked
  sampler (Heston, Merton, custom subclasses) fall back to their own solo
  sampler per cohort, still shared across identical-model groups;
* **vectorized payoffs** -- members of a group are partitioned into payoff
  *families* (vanilla calls/puts, digitals, baskets with equal weights,
  barriers, Asians); each family evaluates all member payoffs as one masked
  array expression over the stacked terminal/path arrays, with per-member
  strike/barrier/rebate columns.  Unrecognised products fall back to the
  per-member loop expressions.

Every vectorized expression mirrors the loop kernel's IEEE operation
sequence -- same draws in the same order, same parenthesisation, same
per-batch accumulation -- so prices and per-path samples are **bit-identical**
to ``kernel="loop"``.  The claim is enforced mechanically by the
``tests/differential`` suite, which asserts ``np.array_equal`` over a matrix
of (model x product x antithetic x batch shape) coordinates.

This module is under the repro-lint determinism contract: it never reads a
wall clock or an entropy source; all randomness comes from the seeded
generators injected by the method parameters.  (Elapsed-time stamping
happens in :mod:`repro.pricing.methods.montecarlo`, outside this module.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import PricingError
from repro.pricing.methods.base import PricingResult
from repro.pricing.methods.montecarlo import MonteCarloEuropean, _MemberState
from repro.pricing.models.base import DiffusionModel1D, Model
from repro.pricing.models.black_scholes import BlackScholesModel
from repro.pricing.models.multi_asset import MultiAssetBlackScholesModel
from repro.pricing.products.asian import AsianOption
from repro.pricing.products.barrier import BarrierOption
from repro.pricing.products.base import Product
from repro.pricing.products.basket import BasketOption
from repro.pricing.products.vanilla import (
    DigitalCall,
    DigitalPut,
    EuropeanCall,
    EuropeanPut,
)
from repro.pricing.rng import AntitheticGenerator, RandomGenerator, create_generator

__all__ = [
    "KERNELS",
    "resolve_kernel",
    "run_groups",
    "price_many_stacked",
    "draw_digest",
]

#: the evaluation kernels selectable through RunConfig / price_many
KERNELS = ("loop", "stacked")

#: memory budget for one stacked simulation chunk, in float64 elements
#: (~128 MiB); a cohort whose groups would exceed it is split into chunks,
#: each consuming the same stream -- replayed from the first chunk's draw
#: tape when it fits the budget below, re-drawn from a fresh generator
#: otherwise -- bit-identical per group either way
_MAX_STACK_ELEMENTS = 1 << 24

#: memory budget for a cohort's recorded draw tape, in float64 elements;
#: multi-chunk cohorts below it replay the first chunk's draws instead of
#: re-generating them (the win is large for quasi-random generators, where
#: every draw pays a normal-inverse transform)
_MAX_TAPE_ELEMENTS = 1 << 24

#: per-batch sample sink: ``sink(member_index, payoffs)`` receives the
#: (pair-averaged when antithetic) payoff samples of each batch
SampleSink = Callable[[int, np.ndarray], None]

#: one group of the plan: (method, model, member products)
GroupSpec = tuple[MonteCarloEuropean, Model, Sequence[Product]]


def resolve_kernel(kernel: str | None) -> str:
    """Normalise and validate a kernel name (``None`` means ``"loop"``)."""
    if kernel is None:
        return "loop"
    kernel = str(kernel).lower()
    if kernel not in KERNELS:
        raise PricingError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


# -- payoff families -----------------------------------------------------------


@dataclass
class _Family:
    """One vectorizable payoff family inside a group."""

    kind: str  # "vanilla" | "basket" | "barrier" | "asian"
    sub: str  # payoff discriminator (class name or payoff_type)
    indices: list[int]
    use_cv: bool
    strikes: np.ndarray
    product0: Any  # representative adjusted product (shared observables)
    barriers: np.ndarray | None = None
    rebates: np.ndarray | None = None
    is_down: bool = False
    is_knock_out: bool = False


def _family_key(product: Product, mode_paths: bool) -> tuple[Any, ...] | None:
    """Family key of a member, or ``None`` for the per-member fallback.

    The identity checks guard against subclasses overriding the payoff
    hooks: a product only joins a vectorized family when the exact loop
    expressions we mirror are the ones it would execute.
    """
    cls = type(product)
    if isinstance(product, BarrierOption):
        if not mode_paths:
            return None
        if (
            cls.path_payoff is BarrierOption.path_payoff
            and cls.breached is BarrierOption.breached
            and cls.vanilla_payoff is BarrierOption.vanilla_payoff
        ):
            return ("barrier", product.barrier_type, product.payoff_type)
        return None
    if isinstance(product, AsianOption):
        if not mode_paths:
            return None
        if cls.path_payoff is AsianOption.path_payoff and cls.average is AsianOption.average:
            return ("asian", product.payoff_type)
        return None
    if isinstance(product, BasketOption):
        if (
            cls.terminal_payoff is BasketOption.terminal_payoff
            and cls.basket_value is BasketOption.basket_value
            and cls.path_payoff is Product.path_payoff
        ):
            return ("basket", product.payoff_type, product.weights.tobytes())
        return None
    if cls in (EuropeanCall, EuropeanPut, DigitalCall, DigitalPut):
        return ("vanilla", cls.__name__)
    return None


def _build_families(
    members: list[_MemberState], mode_paths: bool
) -> tuple[list[_Family], list[int]]:
    grouped: dict[tuple[Any, ...], list[int]] = {}
    fallback: list[int] = []
    for j, member in enumerate(members):
        key = _family_key(member.product_adj, mode_paths)
        if key is None:
            fallback.append(j)
        else:
            grouped.setdefault(key, []).append(j)
    families: list[_Family] = []
    for key, indices in grouped.items():
        kind = key[0]
        adjs: list[Any] = [members[j].product_adj for j in indices]
        strikes = np.array([adj.strike for adj in adjs], dtype=float)
        fam = _Family(
            kind=kind,
            sub=key[1] if kind == "vanilla" else adjs[0].payoff_type,
            indices=indices,
            use_cv=members[indices[0]].use_cv,
            strikes=strikes,
            product0=adjs[0],
        )
        if kind == "barrier":
            fam.barriers = np.array([adj.barrier for adj in adjs], dtype=float)
            fam.rebates = np.array([adj.rebate for adj in adjs], dtype=float)
            fam.is_down = adjs[0].is_down
            fam.is_knock_out = adjs[0].is_knock_out
        families.append(fam)
    return families, fallback


# -- groups and cohorts --------------------------------------------------------


@dataclass
class _Group:
    """One shared-simulation group prepared for the stacked engine."""

    method: MonteCarloEuropean
    model: Model
    members: list[_MemberState]
    n_steps: int
    maturity: float
    mode_paths: bool
    families: list[_Family]
    fallback: list[int]
    sink: SampleSink | None
    results: list[PricingResult] = field(default_factory=list)


def _build_group(
    method: MonteCarloEuropean,
    model: Model,
    products: Sequence[Product],
    sink: SampleSink | None,
) -> _Group:
    products = list(products)
    if not products:
        raise PricingError("a stacked group needs at least one product")
    if not isinstance(method, MonteCarloEuropean):
        raise PricingError("the stacked kernel only prices MonteCarloEuropean groups")
    for product in products:
        method.check_supports(model, product)
    n_steps = method._effective_steps(model, products[0])
    maturity = products[0].maturity
    mode_paths = products[0].path_dependent or n_steps > 1
    for product in products[1:]:
        if not method.shares_simulation(model, products[0], product):
            raise PricingError(
                "products in a shared-path batch must induce the same "
                "simulation grid and sampling mode"
            )
    members = [
        _MemberState(
            product=product,
            product_adj=method._adjusted_product(model, product, n_steps),
            use_cv=method.control_variate and not product.path_dependent,
            discount=model.discount_factor(product.maturity),
        )
        for product in products
    ]
    families, fallback = _build_families(members, mode_paths)
    return _Group(
        method=method,
        model=model,
        members=members,
        n_steps=n_steps,
        maturity=maturity,
        mode_paths=mode_paths,
        families=families,
        fallback=fallback,
        sink=sink,
    )


def _scheme(model: Model, mode_paths: bool) -> str | None:
    """Stacked sampling scheme of a model, ``None`` for opaque samplers."""
    cls = type(model)
    if mode_paths:
        impl = cls.simulate_paths
        if impl is BlackScholesModel.simulate_paths:
            return "bs1d"
        if impl is MultiAssetBlackScholesModel.simulate_paths:
            return "bsnd"
        if impl is DiffusionModel1D.simulate_paths:
            return "lv1d"
    else:
        impl = cls.sample_terminal
        if impl is BlackScholesModel.sample_terminal:
            return "bs1d"
        if impl is MultiAssetBlackScholesModel.sample_terminal:
            return "bsnd"
        if impl is DiffusionModel1D.sample_terminal:
            return "lv1d"
    return None


def _cohort_key(group: _Group) -> tuple[Any, ...]:
    """Groups with equal keys consume identical draw streams when priced solo.

    Stackable schemes share draws across *different* models (each solo run
    would draw the same numbers from its same-seeded generator); opaque
    models only share with bit-equal models, so the model digest joins the
    key.
    """
    scheme = _scheme(group.model, group.mode_paths)
    tag = scheme if scheme is not None else "opaque:" + group.model.param_digest()
    method = group.method
    return (
        tag,
        group.mode_paths,
        group.n_steps,
        group.maturity,
        method.rng_kind,
        method.seed,
        method.antithetic,
        method.n_paths,
        method.batch_size,
        max(group.model.dimension, 1),
    )


def _group_elements(group: _Group) -> int:
    """Peak float64 elements one batch of this group's simulation holds."""
    d = max(group.model.dimension, 1)
    batch = min(group.method.batch_size, group.method.n_paths + 1)
    if group.mode_paths:
        return batch * (group.n_steps + 1) * d
    return batch * d


def _chunk_groups(groups: list[_Group]) -> list[list[_Group]]:
    """Split a cohort so each chunk stays under the stack memory budget."""
    chunks: list[list[_Group]] = []
    current: list[_Group] = []
    used = 0
    for group in groups:
        cost = _group_elements(group)
        if current and used + cost > _MAX_STACK_ELEMENTS:
            chunks.append(current)
            current, used = [], 0
        current.append(group)
        used += cost
    if current:
        chunks.append(current)
    return chunks


# -- random draws --------------------------------------------------------------


class _RecordingGenerator(RandomGenerator):
    """Pass-through generator feeding every raw draw into a byte sink.

    Used by :func:`draw_digest` to pin the stacked kernel's raw random
    stream: the wrapper sits *below* the antithetic wrapper, so exactly the
    base draws (what seeds the whole computation) are hashed.
    """

    name = "recording"

    def __init__(self, base: RandomGenerator, update: Callable[[bytes], None]):
        self.base = base
        self._update = update

    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        draw = self.base.normals(shape)
        self._update(np.ascontiguousarray(draw).tobytes())
        return draw

    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        draw = self.base.uniforms(shape)
        self._update(np.ascontiguousarray(draw).tobytes())
        return draw

    def spawn(self, n: int) -> list["RandomGenerator"]:
        return [_RecordingGenerator(g, self._update) for g in self.base.spawn(n)]


class _TapeGenerator(RandomGenerator):
    """Records the first chunk's base draws; replays them to later chunks.

    A cohort split into memory chunks restarts the same generator from the
    same seed, so every chunk draws *identical* arrays in identical order.
    The tape keeps the first chunk's draws (frozen read-only) and hands the
    very same objects back to the later chunks, skipping the re-generation
    -- which for quasi-random generators means skipping the expensive
    normal-inverse transform entirely.  Bit-exact by identity.
    """

    name = "tape"

    def __init__(self, base: RandomGenerator, tape: list, replay: bool):
        self.base = base
        self._tape = tape
        self._replay = replay
        self._pos = 0

    def _next(self, kind: str, shape: tuple) -> np.ndarray:
        if self._pos >= len(self._tape):
            raise PricingError("draw tape exhausted: chunk draw structures diverged")
        stored_kind, draw = self._tape[self._pos]
        self._pos += 1
        if stored_kind != kind or draw.shape != tuple(int(s) for s in shape):
            raise PricingError("draw tape mismatch: chunk draw structures diverged")
        return draw

    def _store(self, kind: str, draw: np.ndarray) -> np.ndarray:
        draw.setflags(write=False)
        self._tape.append((kind, draw))
        return draw

    def normals(self, shape: tuple[int, ...]) -> np.ndarray:
        if self._replay:
            return self._next("n", shape)
        return self._store("n", self.base.normals(shape))

    def uniforms(self, shape: tuple[int, ...]) -> np.ndarray:
        if self._replay:
            return self._next("u", shape)
        return self._store("u", self.base.uniforms(shape))

    def spawn(self, n: int) -> list[RandomGenerator]:
        raise PricingError("tape generators cannot spawn")


def _cohort_rng(
    method: MonteCarloEuropean,
    dimension: int,
    record: Callable[[bytes], None] | None,
    tape: list | None = None,
    replay: bool = False,
) -> RandomGenerator:
    """The cohort's generator -- identical to ``method._make_rng``.

    With a ``tape``, the base draws are recorded (first chunk) or replayed
    (later chunks) *below* the recording wrapper, so ``record`` observes the
    exact byte stream a re-drawing chunk would have produced.
    """
    rng = create_generator(method.rng_kind, seed=method.seed, dimension=dimension)
    if tape is not None:
        rng = _TapeGenerator(rng, tape, replay)
    if record is not None:
        rng = _RecordingGenerator(rng, record)
    if method.antithetic:
        rng = AntitheticGenerator(rng)
    return rng


def _simulate(
    scheme: str | None,
    models: list[Any],
    rng: RandomGenerator,
    batch: int,
    times: np.ndarray,
    maturity: float,
    mode_paths: bool,
) -> list[tuple[np.ndarray | None, np.ndarray]]:
    """One batch of simulation for every group: ``[(paths, terminal), ...]``."""
    if scheme is None:
        # opaque sampler: all cohort members carry bit-equal models (the
        # digest is part of the cohort key), so one solo simulation serves
        # every group -- each would have produced exactly this array
        model = models[0]
        if mode_paths:
            paths = model.simulate_paths(rng, batch, times)
            terminal = paths[:, -1] if paths.ndim == 2 else paths[:, -1, :]
            return [(paths, terminal)] * len(models)
        terminal = model.sample_terminal(rng, batch, maturity)
        return [(None, terminal)] * len(models)
    if scheme in ("bs1d", "lv1d"):
        sampler = BlackScholesModel if scheme == "bs1d" else DiffusionModel1D
        if mode_paths:
            stacked = sampler.stacked_simulate_paths(models, rng, batch, times)
            return [(stacked[g], stacked[g][:, -1]) for g in range(len(models))]
        flat = sampler.stacked_sample_terminal(models, rng, batch, maturity)
        return [(None, flat[g]) for g in range(len(models))]
    if mode_paths:
        arrs = MultiAssetBlackScholesModel.stacked_simulate_paths(models, rng, batch, times)
        return [(arr, arr[:, -1, :]) for arr in arrs]
    terminals = MultiAssetBlackScholesModel.stacked_sample_terminal(
        models, rng, batch, maturity
    )
    return [(None, arr) for arr in terminals]


# -- payoff evaluation ---------------------------------------------------------


def _family_payoffs(
    fam: _Family,
    paths: np.ndarray | None,
    terminal: np.ndarray,
    lo: np.ndarray | None,
    hi: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Payoff matrix ``(n_members, batch)`` and shared control array.

    Each row reproduces the member's loop-kernel payoff expression with the
    member parameter broadcast as a column; the control variate (when used)
    is the loop's ``_control_value`` observable, computed once per family.
    """
    strikes = fam.strikes[:, None]
    if fam.kind == "vanilla":
        t = terminal[None, :]
        if fam.sub == "EuropeanCall":
            payoffs = np.maximum(t - strikes, 0.0)
        elif fam.sub == "EuropeanPut":
            payoffs = np.maximum(strikes - t, 0.0)
        elif fam.sub == "DigitalCall":
            payoffs = (t > strikes).astype(float)
        else:
            payoffs = (t < strikes).astype(float)
        return payoffs, (terminal if fam.use_cv else None)
    if fam.kind == "basket":
        basket = fam.product0.basket_value(terminal)
        b = basket[None, :]
        if fam.sub == "call":
            payoffs = np.maximum(b - strikes, 0.0)
        else:
            payoffs = np.maximum(strikes - b, 0.0)
        if not fam.use_cv:
            return payoffs, None
        # mirror _control_value: `terminal @ weights` for (n, d) terminals
        # (== basket_value bit-for-bit), the raw terminal for 1-d baskets
        return payoffs, (basket if terminal.ndim == 2 else terminal)
    if fam.kind == "asian":
        avg = fam.product0.average(paths)[None, :]
        if fam.sub == "call":
            payoffs = np.maximum(avg - strikes, 0.0)
        else:
            payoffs = np.maximum(strikes - avg, 0.0)
        return payoffs, None
    # barrier: (min <= B) is element-for-element the loop's (paths <= B).any()
    assert fam.barriers is not None and fam.rebates is not None
    ref = lo if fam.is_down else hi
    assert ref is not None and paths is not None
    if fam.is_down:
        breached = ref[None, :] <= fam.barriers[:, None]
    else:
        breached = ref[None, :] >= fam.barriers[:, None]
    last = paths[:, -1][None, :]
    if fam.sub == "call":
        vanilla = np.maximum(last - strikes, 0.0)
    else:
        vanilla = np.maximum(strikes - last, 0.0)
    if fam.is_knock_out:
        payoffs = np.where(breached, fam.rebates[:, None], vanilla)
    else:
        payoffs = np.where(breached, vanilla, 0.0)
    return payoffs, None


def _accumulate_group(
    group: _Group,
    paths: np.ndarray | None,
    terminal: np.ndarray,
    times: np.ndarray,
    half: int,
) -> None:
    """Fold one batch into every member's accumulators (loop-identical)."""
    antithetic = group.method.antithetic
    lo = hi = None
    if paths is not None and paths.ndim == 2:
        if any(fam.kind == "barrier" and fam.is_down for fam in group.families):
            lo = paths.min(axis=1)
        if any(fam.kind == "barrier" and not fam.is_down for fam in group.families):
            hi = paths.max(axis=1)
    for fam in group.families:
        payoffs, control = _family_payoffs(fam, paths, terminal, lo, hi)
        if antithetic:
            payoffs = 0.5 * (payoffs[:, :half] + payoffs[:, half:])
            if control is not None:
                control = 0.5 * (control[:half] + control[half:])
        row_sum = payoffs.sum(axis=1)
        row_sum2 = (payoffs**2).sum(axis=1)
        if control is not None:
            control_sum = control.sum()
            control_sum2 = (control**2).sum()
            cross = (payoffs * control[None, :]).sum(axis=1)
        for i, j in enumerate(fam.indices):
            member = group.members[j]
            member.sum_payoff += row_sum[i]
            member.sum_payoff2 += row_sum2[i]
            if control is not None:
                member.sum_control += control_sum
                member.sum_control2 += control_sum2
                member.sum_cross += cross[i]
        if group.sink is not None:
            for i, j in enumerate(fam.indices):
                group.sink(j, payoffs[i])
    for j in group.fallback:
        member = group.members[j]
        if group.mode_paths:
            assert paths is not None
            raw = member.product_adj.path_payoff(paths, times)
        else:
            raw = member.product_adj.terminal_payoff(terminal)
        payoffs1 = np.asarray(raw, dtype=float)
        if member.use_cv:
            control1 = group.method._control_value(group.model, terminal, member.product_adj)
        else:
            control1 = None
        if antithetic:
            payoffs1 = 0.5 * (payoffs1[:half] + payoffs1[half:])
            if control1 is not None:
                control1 = 0.5 * (control1[:half] + control1[half:])
        member.sum_payoff += payoffs1.sum()
        member.sum_payoff2 += (payoffs1**2).sum()
        if control1 is not None:
            member.sum_control += control1.sum()
            member.sum_control2 += (control1**2).sum()
            member.sum_cross += (payoffs1 * control1).sum()
        if group.sink is not None:
            group.sink(j, payoffs1)


# -- the engine ----------------------------------------------------------------


def _run_chunk(
    groups: list[_Group],
    record: Callable[[bytes], None] | None,
    tape: list | None = None,
    replay: bool = False,
) -> None:
    """Price one cohort chunk: shared draws, per-group member evaluation."""
    method0 = groups[0].method
    model0 = groups[0].model
    mode_paths = groups[0].mode_paths
    n_steps = groups[0].n_steps
    maturity = groups[0].maturity
    scheme = _scheme(model0, mode_paths)
    models = [group.model for group in groups]
    times = np.linspace(0.0, maturity, n_steps + 1)

    n_total = method0.n_paths
    if method0.antithetic and n_total % 2:
        # same odd-n_paths parity fix as the loop kernel: simulate one extra
        # path to complete the last antithetic pair, report exact counts
        n_total += 1

    n_done = 0
    n_samples = 0
    rng = _cohort_rng(method0, max(model0.dimension, 1), record, tape, replay)
    while n_done < n_total:
        batch = min(method0.batch_size, n_total - n_done)
        if method0.antithetic:
            batch -= batch % 2
        sims = _simulate(scheme, models, rng, batch, times, maturity, mode_paths)
        half = batch // 2
        for group, (paths, terminal) in zip(groups, sims):
            _accumulate_group(group, paths, terminal, times, half)
        n_done += batch
        n_samples += half if method0.antithetic else batch

    n_paths_used = 2 * n_samples if method0.antithetic else n_samples
    for group in groups:
        group.results = [
            group.method._finalize_member(
                group.model, member, n_samples, n_paths_used, group.n_steps
            )
            for member in group.members
        ]


def run_groups(
    groups: Sequence[GroupSpec],
    sample_sinks: dict[int, SampleSink] | None = None,
    record: Callable[[bytes], None] | None = None,
) -> list[list[PricingResult]]:
    """Price every group of a plan through the stacked engine.

    ``groups`` is a sequence of ``(method, model, products)`` tuples -- one
    per shared-simulation group.  Groups are clustered into draw cohorts,
    each cohort simulated as one stacked computation (chunked to a memory
    budget), and each group's members evaluated family-vectorized.  Returns
    one result list per group, in input order, bit-identical to
    ``method.price_many(model, products)`` per group.

    ``sample_sinks`` optionally maps a group index to a callable receiving
    ``(member_index, payoff_batch)`` for every batch -- the differential
    harness uses it to compare per-path samples, not just prices.
    ``record`` receives the raw bytes of every underlying random draw (see
    :func:`draw_digest`).
    """
    built = []
    for gi, (method, model, products) in enumerate(groups):
        sink = sample_sinks.get(gi) if sample_sinks else None
        built.append(_build_group(method, model, products, sink))
    cohorts: dict[tuple[Any, ...], list[_Group]] = {}
    for group in built:
        cohorts.setdefault(_cohort_key(group), []).append(group)
    for cohort in cohorts.values():
        chunks = _chunk_groups(cohort)
        tape = [] if len(chunks) > 1 and _tape_elements(cohort[0]) <= _MAX_TAPE_ELEMENTS \
            else None
        for index, chunk in enumerate(chunks):
            _run_chunk(chunk, record, tape, replay=(tape is not None and index > 0))
    return [group.results for group in built]


def _tape_elements(group: _Group) -> int:
    """Estimated float64 draw volume of one chunk of the group's cohort.

    Exact for the diffusion schemes (one base draw per path, per step, per
    asset; halved by antithetic mirroring); a lower bound for opaque
    samplers with auxiliary draws (stochastic vol, jump counts), which is
    acceptable for a memory *budget* heuristic.
    """
    method = group.method
    n_total = method.n_paths + (method.n_paths % 2 if method.antithetic else 0)
    per_path = max(group.model.dimension, 1) * (group.n_steps if group.mode_paths else 1)
    return (n_total // 2 if method.antithetic else n_total) * per_path


def price_many_stacked(
    method: MonteCarloEuropean,
    model: Model,
    products: Sequence[Product],
    sample_sink: SampleSink | None = None,
) -> list[PricingResult]:
    """Stacked-kernel equivalent of one ``price_many`` call (one group)."""
    sinks = {0: sample_sink} if sample_sink is not None else None
    return run_groups([(method, model, list(products))], sample_sinks=sinks)[0]


def draw_digest(
    method: MonteCarloEuropean, model: Model, products: Sequence[Product]
) -> str:
    """SHA-256 hex digest of the raw random stream the stacked kernel draws.

    The digest covers every base-generator draw (below the antithetic
    wrapper) in consumption order, so it pins the RNG stream itself: a
    regression that changes *what* is drawn is caught even if both kernels
    drift together and still agree with each other.
    """
    hasher = hashlib.sha256()
    run_groups([(method, model, list(products))], record=hasher.update)
    return hasher.hexdigest()
