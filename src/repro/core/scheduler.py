"""Load-balancing schedulers for the portfolio valuation benchmark.

The paper uses "a simplified 'Robbin Hood' strategy ... First, the master
sends one job to each slave and as soon as a slave finishes its computation
and sends its answer back, it is assigned a new job.  This mechanism goes on
until the whole portfolio has been treated" (Fig. 4).  Its conclusion sketches
two refinements: "gather several pricing problems and send them all together
to reduce the communication latency" and "divide the nodes into sub-groups,
each group having its own master".

This module implements:

* :class:`RobinHoodScheduler` -- the paper's dynamic master/worker loop;
* :class:`StaticBlockScheduler` -- a static pre-partitioning baseline (what
  the dynamic strategy is implicitly compared against);
* :class:`ChunkedRobinHoodScheduler` -- Robin Hood with job batching (the
  first refinement);
* :func:`simulate_hierarchical` -- the sub-master organisation (the second
  refinement), evaluated on the simulated cluster.

All schedulers drive a :class:`~repro.cluster.backends.base.WorkerBackend`
through the same dispatch/collect interface, so the same code path runs on
the sequential backend, on real ``multiprocessing`` workers and on the
simulated cluster.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.cluster.backends.base import BackendStats, CompletedJob, Job, WorkerBackend
from repro.cluster.simcluster.comm import CommunicationModel
from repro.cluster.simcluster.node import ClusterSpec
from repro.cluster.simcluster.simulator import SimulatedClusterBackend
from repro.core.strategies import TransmissionStrategy
from repro.errors import SchedulingError

__all__ = [
    "ScheduleOutcome",
    "ScheduleStream",
    "Scheduler",
    "RobinHoodScheduler",
    "StaticBlockScheduler",
    "ChunkedRobinHoodScheduler",
    "simulate_hierarchical",
    "SCHEDULERS",
]


@dataclass
class ScheduleOutcome:
    """Everything the scheduler hands back to the runner."""

    completed: list[CompletedJob]
    stats: BackendStats
    scheduler_name: str
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.stats.total_time

    @property
    def errors(self) -> list[CompletedJob]:
        return [job for job in self.completed if job.error is not None]


def _prepare(backend: WorkerBackend, strategy: TransmissionStrategy, job: Job):
    """Prepare the real payload only for backends that execute it."""
    if getattr(backend, "requires_payload", True):
        return strategy.prepare(job)
    return None


def _check_jobs(jobs: Sequence[Job]) -> None:
    if not jobs:
        raise SchedulingError("cannot schedule an empty job list")
    seen: set[int] = set()
    for job in jobs:
        if job.job_id in seen:
            raise SchedulingError(f"duplicate job id {job.job_id}")
        seen.add(job.job_id)


class ScheduleStream:
    """Pull-driven incremental form of the paper's master loop (Fig. 4).

    The historical schedulers ran to completion: dispatch everything, collect
    everything, hand back one :class:`ScheduleOutcome`.  A *stream* exposes
    the same Robin-Hood loop one collection at a time, which is what the
    futures API (:mod:`repro.api.futures`) builds on:

    * construction sends the initial wave (one job per slave, exactly like
      the run-to-completion loop did);
    * each :meth:`collect_next` blocks until any worker answers, hands the
      freed worker the next queued job, and returns the completed job --
      ``MPI_Probe`` on any source followed by ``MPI_Recv_Obj``;
    * :meth:`try_collect_next` is the non-blocking variant (``MPI_Iprobe``);
    * :meth:`cancel_job` withdraws a job that is still queued master-side;
    * :meth:`finish` drains whatever is left, sends the stop messages and
      finalizes the backend into the familiar :class:`ScheduleOutcome`.

    Driving a stream to exhaustion performs the exact same backend call
    sequence as :meth:`RobinHoodScheduler.run` -- on the simulated backend
    the virtual times are bit-identical.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
        scheduler_name: str = "robin_hood",
    ):
        _check_jobs(jobs)
        self.backend = backend
        self.strategy = strategy
        self.scheduler_name = scheduler_name
        self.n_jobs = len(jobs)
        self._queue: deque[Job] = deque(jobs)
        self._in_flight = 0
        self._completed: list[CompletedJob] = []
        self._cancelled: list[Job] = []
        self._outcome: ScheduleOutcome | None = None
        backend.on_run_start(len(jobs))
        # first, one job per slave
        for worker_id in range(min(backend.n_workers, len(self._queue))):
            self._dispatch(worker_id)

    def _dispatch(self, worker_id: int) -> None:
        job = self._queue.popleft()
        self.backend.dispatch(
            worker_id, job, _prepare(self.backend, self.strategy, job)
        )
        self._in_flight += 1

    # -- state -------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Jobs not yet collected (queued master-side or on a worker)."""
        return len(self._queue) + self._in_flight

    @property
    def completed(self) -> list[CompletedJob]:
        """Results collected so far, in completion order."""
        return list(self._completed)

    @property
    def cancelled_jobs(self) -> list[Job]:
        """Jobs withdrawn from the queue before they were dispatched."""
        return list(self._cancelled)

    def poll(self) -> bool:
        """Whether :meth:`collect_next` would return without blocking."""
        return self._in_flight > 0 and self.backend.poll()

    # -- collection --------------------------------------------------------------
    def _account(self, done: CompletedJob) -> CompletedJob:
        self._completed.append(done)
        self._in_flight -= 1
        # feed the slave that just answered, as Fig. 4 does
        if self._queue:
            self._dispatch(done.worker_id)
        return done

    def collect_next(self, timeout: float | None = None) -> CompletedJob:
        """Block until the next result arrives; refill the freed worker.

        ``timeout`` bounds the wait on backends with a real clock
        (multiprocessing); immediate backends ignore it.
        """
        if self.remaining == 0:
            raise SchedulingError("stream exhausted: every job was collected")
        if timeout is None:
            # let the backend apply its own safety default (multiprocessing
            # uses 300 s; immediate backends have none)
            return self._account(self.backend.collect())
        return self._account(self.backend.collect(timeout))

    def try_collect_next(self) -> CompletedJob | None:
        """Collect one result if ready now, else ``None``.  Never blocks."""
        if self._in_flight == 0:
            return None
        done = self.backend.try_collect()
        if done is None:
            return None
        return self._account(done)

    def __iter__(self) -> Iterator[CompletedJob]:
        while self.remaining:
            yield self.collect_next()

    # -- cancellation ------------------------------------------------------------
    def cancel_job(self, job_id: int) -> bool:
        """Withdraw a still-queued job; ``False`` once it is on a worker."""
        for job in self._queue:
            if job.job_id == job_id:
                self._queue.remove(job)
                self._cancelled.append(job)
                return True
        return False

    def cancel_pending(self) -> list[Job]:
        """Withdraw every job not yet dispatched (in-flight ones finish)."""
        dropped = list(self._queue)
        self._queue.clear()
        self._cancelled.extend(dropped)
        return dropped

    # -- termination -------------------------------------------------------------
    def finish(self) -> ScheduleOutcome:
        """Drain remaining results, stop the slaves, finalize the backend."""
        if self._outcome is not None:
            return self._outcome
        while self.remaining:
            self.collect_next()
        # tell every slave to stop working (the empty message of Fig. 4)
        for worker_id in range(self.backend.n_workers):
            self.backend.send_stop(worker_id)
        stats = self.backend.finalize()
        self._outcome = ScheduleOutcome(
            completed=self._completed,
            stats=stats,
            scheduler_name=self.scheduler_name,
        )
        return self._outcome


class Scheduler(abc.ABC):
    """Common interface of the load balancers."""

    name: str = "abstract"
    #: whether :meth:`stream` yields genuinely incremental collection
    supports_streaming: bool = False

    @abc.abstractmethod
    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        """Dispatch every job, collect every result, finalize the backend."""

    def stream(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleStream:
        """An incremental :class:`ScheduleStream` over ``jobs``.

        Only schedulers with ``supports_streaming = True`` implement this;
        the static/chunked policies dispatch in patterns that have no
        one-collection-at-a-time equivalent yet.
        """
        raise SchedulingError(
            f"scheduler {self.name!r} does not support streaming collection; "
            f"use robin_hood (the default)"
        )


class RobinHoodScheduler(Scheduler):
    """The paper's dynamic master/worker loop (Fig. 4)."""

    name = "robin_hood"
    supports_streaming = True

    def stream(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleStream:
        return ScheduleStream(jobs, backend, strategy, scheduler_name=self.name)

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        # the run-to-completion loop is the streamed loop, drained
        return self.stream(jobs, backend, strategy).finish()


class StaticBlockScheduler(Scheduler):
    """Pre-partition the portfolio into contiguous blocks, one per worker.

    No dynamic balancing: a worker that drew the expensive block becomes the
    critical path.  Used as the baseline of the scheduler ablation benchmark.
    """

    name = "static_block"

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        _check_jobs(jobs)
        backend.on_run_start(len(jobs))
        n_workers = backend.n_workers
        completed: list[CompletedJob] = []

        # contiguous blocks, as a naive static partitioning would do
        for index, job in enumerate(jobs):
            worker_id = min(index * n_workers // len(jobs), n_workers - 1)
            backend.dispatch(worker_id, job, _prepare(backend, strategy, job))
        for _ in range(len(jobs)):
            completed.append(backend.collect())
        for worker_id in range(n_workers):
            backend.send_stop(worker_id)
        stats = backend.finalize()
        return ScheduleOutcome(completed=completed, stats=stats, scheduler_name=self.name)


class ChunkedRobinHoodScheduler(Scheduler):
    """Robin Hood dispatching ``chunk_size`` jobs per message.

    "The first idea is to gather several pricing problems and send them all
    together to reduce the communication latency: it is always advisable to
    send a single large message rather [than] several smaller messages."
    Dispatching still goes through the per-job backend interface, but on
    backends that expose ``dispatch_batch`` (the simulated cluster) a single
    message latency is charged per chunk instead of per job.
    """

    name = "chunked_robin_hood"

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    def _dispatch_chunk(
        self,
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
        worker_id: int,
        chunk: list[Job],
    ) -> None:
        batch = getattr(backend, "dispatch_batch", None)
        if batch is not None:
            batch(worker_id, chunk, [
                _prepare(backend, strategy, job) for job in chunk
            ] if getattr(backend, "requires_payload", True) else None)
        else:
            for job in chunk:
                backend.dispatch(worker_id, job, _prepare(backend, strategy, job))

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        _check_jobs(jobs)
        backend.on_run_start(len(jobs))
        completed: list[CompletedJob] = []
        chunks = [
            list(jobs[i : i + self.chunk_size]) for i in range(0, len(jobs), self.chunk_size)
        ]
        queue = list(chunks)
        n_initial = min(backend.n_workers, len(queue))
        outstanding: dict[int, int] = {}

        for worker_id in range(n_initial):
            chunk = queue.pop(0)
            self._dispatch_chunk(backend, strategy, worker_id, chunk)
            outstanding[worker_id] = outstanding.get(worker_id, 0) + len(chunk)

        remaining = sum(outstanding.values()) + sum(len(c) for c in queue)
        while remaining:
            done = backend.collect()
            completed.append(done)
            remaining -= 1
            outstanding[done.worker_id] -= 1
            # hand the worker a new chunk once it drained its previous one
            if outstanding[done.worker_id] == 0 and queue:
                chunk = queue.pop(0)
                self._dispatch_chunk(backend, strategy, done.worker_id, chunk)
                outstanding[done.worker_id] += len(chunk)

        for worker_id in range(backend.n_workers):
            backend.send_stop(worker_id)
        stats = backend.finalize()
        return ScheduleOutcome(
            completed=completed,
            stats=stats,
            scheduler_name=self.name,
            extra={"chunk_size": self.chunk_size},
        )


def simulate_hierarchical(
    jobs: Sequence[Job],
    n_workers: int,
    n_groups: int,
    strategy_name: str = "serialized_load",
    comm: CommunicationModel | None = None,
    worker_speed: float = 1.0,
    chunk_size: int = 1,
) -> dict[str, Any]:
    """Two-level master organisation evaluated on the simulated cluster.

    "one way of encompassing this difficulty is to divide the nodes into
    sub-groups, each group having its own master.  Then, each sub-master could
    apply a naive load balancing but since it has fewer slave processes to
    monitor the speedups would be better."

    The global master deals jobs to ``n_groups`` sub-masters round-robin (a
    cheap name-only message per job); each sub-master then runs its own Robin
    Hood loop over its share of the workers.  Each group uses an independent
    :class:`SimulatedClusterBackend`; the reported makespan is the slowest
    group, plus the global master's dealing time.

    Returns a dictionary with ``total_time``, ``group_times`` and
    ``master_dealing_time``.
    """
    from repro.core.strategies import get_strategy

    if n_groups < 1:
        raise SchedulingError("n_groups must be >= 1")
    if n_workers < n_groups:
        raise SchedulingError("need at least one worker per group")
    _check_jobs(jobs)
    base_comm = comm if comm is not None else CommunicationModel()

    # the global master only forwards file names to the sub-masters
    dealing_time = len(jobs) * (
        base_comm.nfs_master_overhead
        + base_comm.network.transfer_time(base_comm.name_message_bytes)
    )

    # split workers and jobs across groups (round-robin keeps the expensive
    # jobs spread out, like the paper's single-master dealing order)
    group_sizes = [n_workers // n_groups] * n_groups
    for i in range(n_workers % n_groups):
        group_sizes[i] += 1
    group_jobs: list[list[Job]] = [[] for _ in range(n_groups)]
    for index, job in enumerate(jobs):
        group_jobs[index % n_groups].append(job)

    scheduler: Scheduler
    if chunk_size > 1:
        scheduler = ChunkedRobinHoodScheduler(chunk_size=chunk_size)
    else:
        scheduler = RobinHoodScheduler()

    group_times: list[float] = []
    for size, sub_jobs in zip(group_sizes, group_jobs):
        if not sub_jobs:
            group_times.append(0.0)
            continue
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(size, speed=worker_speed),
            strategy=strategy_name,
            comm=CommunicationModel(network=base_comm.network, nfs=base_comm.nfs),
        )
        outcome = scheduler.run(sub_jobs, backend, get_strategy(strategy_name))
        group_times.append(outcome.total_time)

    return {
        "total_time": dealing_time + max(group_times),
        "group_times": group_times,
        "master_dealing_time": dealing_time,
        "n_groups": n_groups,
        "n_workers": n_workers,
    }


#: named schedulers usable from the command line and the benchmarks
SCHEDULERS: dict[str, Any] = {
    RobinHoodScheduler.name: RobinHoodScheduler,
    StaticBlockScheduler.name: StaticBlockScheduler,
    ChunkedRobinHoodScheduler.name: ChunkedRobinHoodScheduler,
}
