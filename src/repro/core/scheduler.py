"""Load-balancing schedulers for the portfolio valuation benchmark.

The paper uses "a simplified 'Robbin Hood' strategy ... First, the master
sends one job to each slave and as soon as a slave finishes its computation
and sends its answer back, it is assigned a new job.  This mechanism goes on
until the whole portfolio has been treated" (Fig. 4).  Its conclusion sketches
two refinements: "gather several pricing problems and send them all together
to reduce the communication latency" and "divide the nodes into sub-groups,
each group having its own master".

Since the streaming-first redesign there is exactly **one** master loop --
:class:`ScheduleStream`, the paper's Fig. 4 in pull-driven form -- and every
scheduling variant is a :class:`DispatchPolicy` strategy object plugged into
it: how the initial wave is shaped, how a freed worker is refilled, and
whether several jobs travel as one message.  The shipped policies are

* :class:`RobinHoodPolicy` -- the paper's dynamic loop: one job per slave,
  refill the slave that just answered;
* :class:`StaticBlockPolicy` -- full pre-partition into contiguous blocks,
  no refill (the baseline the dynamic strategy is compared against);
* :class:`ChunkedPolicy` -- Robin Hood over ``chunk_size``-job chunks, each
  chunk shipped as a single message (the conclusion's first refinement);
* :class:`WorkStealingPolicy` -- static per-worker blocks plus dynamic
  stealing: an idle worker refills from the tail of the most-loaded
  worker's still-queued block;
* :class:`PriorityPolicy` -- Robin Hood over a priority-ordered queue:
  urgent jobs reach the slaves first, equal priorities keep submission
  order (the policy the ``repro-serve`` daemon uses to honour per-request
  priorities -- the plugin surface carrying a product feature).

Each policy is wrapped by a thin :class:`Scheduler` shell
(``supports_streaming = True`` across the board; ``run()`` is literally
``stream(...).finish()``), registered in :data:`SCHEDULERS` and extensible
through :func:`register_scheduler`.  :func:`simulate_hierarchical` builds the
conclusion's second refinement (sub-masters) on top of the same loop.

All schedulers drive a :class:`~repro.cluster.backends.base.WorkerBackend`
through the same dispatch/collect interface, so the same code path runs on
the sequential backend, on real ``multiprocessing`` workers, on remote
``repro-worker`` TCP pools and on the simulated cluster.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.cluster.backends.base import BackendStats, CompletedJob, Job, WorkerBackend
from repro.cluster.simcluster.comm import CommunicationModel
from repro.cluster.simcluster.node import ClusterSpec
from repro.cluster.simcluster.simulator import SimulatedClusterBackend
from repro.core.strategies import TransmissionStrategy
from repro.errors import SchedulingError

__all__ = [
    "ScheduleOutcome",
    "ScheduleStream",
    "DispatchPolicy",
    "RobinHoodPolicy",
    "StaticBlockPolicy",
    "ChunkedPolicy",
    "WorkStealingPolicy",
    "PriorityPolicy",
    "Scheduler",
    "RobinHoodScheduler",
    "StaticBlockScheduler",
    "ChunkedRobinHoodScheduler",
    "WorkStealingScheduler",
    "PriorityScheduler",
    "simulate_hierarchical",
    "register_scheduler",
    "SCHEDULERS",
]


@dataclass
class ScheduleOutcome:
    """Everything the scheduler hands back to the runner."""

    completed: list[CompletedJob]
    stats: BackendStats
    scheduler_name: str
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.stats.total_time

    @property
    def errors(self) -> list[CompletedJob]:
        return [job for job in self.completed if job.error is not None]


def _prepare(backend: WorkerBackend, strategy: TransmissionStrategy, job: Job):
    """Prepare the real payload only for backends that execute it."""
    if getattr(backend, "requires_payload", True):
        return strategy.prepare(job)
    return None


def _check_jobs(jobs: Sequence[Job]) -> None:
    if not jobs:
        raise SchedulingError("cannot schedule an empty job list")
    seen: set[int] = set()
    for job in jobs:
        if job.job_id in seen:
            raise SchedulingError(f"duplicate job id {job.job_id}")
        seen.add(job.job_id)


class DispatchPolicy(abc.ABC):
    """How one :class:`ScheduleStream` shapes its dispatches.

    A policy owns the master-side queue: it decides the initial wave (which
    worker receives which jobs before anything is collected), the refill rule
    (what a freed worker gets after each answer), and whether a wave travels
    as one message per job (``chunked = False`` -> ``backend.dispatch``) or
    as one message per chunk (``chunked = True`` ->
    ``backend.dispatch_batch``).  The stream handles everything else --
    collection, accounting, cancellation bookkeeping, termination -- so a new
    scheduling variant is a policy plus a thin :class:`Scheduler` shell (see
    ``docs/schedulers.md`` for a worked example).
    """

    name: str = "abstract"
    #: when ``True`` every wave ships through ``backend.dispatch_batch``
    #: (one message per chunk -- the conclusion's latency refinement);
    #: otherwise one ``backend.dispatch`` call per job
    chunked: bool = False

    @abc.abstractmethod
    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        """Take ownership of ``jobs`` before anything is dispatched."""

    @abc.abstractmethod
    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        """Yield ``(worker_id, jobs)`` waves to dispatch before collecting."""

    @abc.abstractmethod
    def refill(self, worker_id: int) -> list[Job] | None:
        """The next wave for ``worker_id``, called once per collected job.

        Return ``None`` (or an empty list) to leave the worker idle; the
        policy is responsible for its own outstanding-work bookkeeping.
        """

    @abc.abstractmethod
    def queued_jobs(self) -> list[Job]:
        """Jobs still held master-side (not yet dispatched)."""

    @abc.abstractmethod
    def withdraw(self, job_id: int) -> Job | None:
        """Remove a still-queued job from the plan; ``None`` if not queued."""

    def withdraw_all(self) -> list[Job]:
        """Remove every still-queued job (in-flight ones keep running)."""
        return [job for job in list(self.queued_jobs())
                if self.withdraw(job.job_id) is not None]

    @property
    def n_queued(self) -> int:
        """How many jobs are still queued.

        The stream reads this once per collection, so concrete policies
        override it with an O(1) counter; this default recount is only a
        correctness fallback for third-party policies.
        """
        return len(self.queued_jobs())

    def outcome_extra(self) -> dict[str, Any]:
        """Policy-specific entries for :attr:`ScheduleOutcome.extra`."""
        return {}


class RobinHoodPolicy(DispatchPolicy):
    """The paper's dynamic loop: one job per slave, refill whoever answers."""

    name = "robin_hood"

    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        self._queue: deque[Job] = deque(jobs)
        self._n_workers = n_workers

    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        # first, one job per slave, exactly like Fig. 4
        for worker_id in range(min(self._n_workers, len(self._queue))):
            yield worker_id, [self._queue.popleft()]

    def refill(self, worker_id: int) -> list[Job] | None:
        # feed the slave that just answered, as Fig. 4 does
        if self._queue:
            return [self._queue.popleft()]
        return None

    def queued_jobs(self) -> list[Job]:
        return list(self._queue)

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def withdraw(self, job_id: int) -> Job | None:
        for job in self._queue:
            if job.job_id == job_id:
                self._queue.remove(job)
                return job
        return None

    def withdraw_all(self) -> list[Job]:
        dropped = list(self._queue)
        self._queue.clear()
        return dropped


class StaticBlockPolicy(DispatchPolicy):
    """Full pre-partition into contiguous blocks, one per worker, no refill.

    Everything is dispatched in the initial wave, so nothing is ever queued
    master-side: ``cancel_pending`` finds nothing to withdraw and the worker
    that drew the expensive block becomes the critical path.  This is the
    baseline of the scheduler ablation benchmark.
    """

    name = "static_block"

    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        n_jobs = len(jobs)
        self._assignments: list[tuple[int, Job]] = [
            (min(index * n_workers // n_jobs, n_workers - 1), job)
            for index, job in enumerate(jobs)
        ]

    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        assignments, self._assignments = self._assignments, []
        for worker_id, job in assignments:
            yield worker_id, [job]

    def refill(self, worker_id: int) -> list[Job] | None:
        return None

    def queued_jobs(self) -> list[Job]:
        return [job for _, job in self._assignments]

    @property
    def n_queued(self) -> int:
        return len(self._assignments)

    def withdraw(self, job_id: int) -> Job | None:
        for entry in self._assignments:
            if entry[1].job_id == job_id:
                self._assignments.remove(entry)
                return entry[1]
        return None


class ChunkedPolicy(DispatchPolicy):
    """Robin Hood over ``chunk_size``-job chunks, one message per chunk.

    "The first idea is to gather several pricing problems and send them all
    together to reduce the communication latency: it is always advisable to
    send a single large message rather [than] several smaller messages."
    Chunks travel through ``backend.dispatch_batch``: natively one message
    (queue item, TCP frame, simulated single-latency send) on backends that
    implement it, a per-job loop everywhere else.  A worker is refilled once
    it has drained its whole previous chunk.
    """

    name = "chunked"
    chunked = True

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        self._queue: deque[list[Job]] = deque(
            list(jobs[i : i + self.chunk_size])
            for i in range(0, len(jobs), self.chunk_size)
        )
        self._n_workers = n_workers
        self._outstanding: dict[int, int] = {}
        self._queued_count = len(jobs)

    def _next_chunk(self, worker_id: int) -> list[Job]:
        chunk = self._queue.popleft()
        self._queued_count -= len(chunk)
        self._outstanding[worker_id] = self._outstanding.get(worker_id, 0) + len(chunk)
        return chunk

    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        for worker_id in range(min(self._n_workers, len(self._queue))):
            yield worker_id, self._next_chunk(worker_id)

    def refill(self, worker_id: int) -> list[Job] | None:
        self._outstanding[worker_id] -= 1
        # hand the worker a new chunk once it drained its previous one
        if self._outstanding[worker_id] == 0 and self._queue:
            return self._next_chunk(worker_id)
        return None

    def queued_jobs(self) -> list[Job]:
        return [job for chunk in self._queue for job in chunk]

    @property
    def n_queued(self) -> int:
        return self._queued_count

    def withdraw(self, job_id: int) -> Job | None:
        for chunk in self._queue:
            for job in chunk:
                if job.job_id == job_id:
                    chunk.remove(job)
                    self._queued_count -= 1
                    if not chunk:
                        self._queue.remove(chunk)
                    return job
        return None

    def withdraw_all(self) -> list[Job]:
        dropped = [job for chunk in self._queue for job in chunk]
        self._queue.clear()
        self._queued_count = 0
        return dropped

    def outcome_extra(self) -> dict[str, Any]:
        return {"chunk_size": self.chunk_size}


class WorkStealingPolicy(DispatchPolicy):
    """Static per-worker blocks plus dynamic stealing from the loaded tail.

    Each worker owns the contiguous block a static partition would give it
    and works through it front to back, one job per message.  A worker whose
    own block is exhausted *steals* from the tail of the most-loaded worker's
    still-queued block (most remaining estimated compute), so the expensive
    block stops being a critical path without giving up the locality of a
    static plan.
    """

    name = "work_stealing"

    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        n_jobs = len(jobs)
        self._queues: list[deque[Job]] = [deque() for _ in range(n_workers)]
        for index, job in enumerate(jobs):
            self._queues[min(index * n_workers // n_jobs, n_workers - 1)].append(job)
        # running per-queue load totals, so steal-victim selection is
        # O(n_workers) instead of rescanning every queued job per steal
        self._loads = [
            sum(job.compute_cost for job in queue) for queue in self._queues
        ]
        self._queued_count = n_jobs

    def _take(self, worker_id: int, job: Job) -> Job:
        self._loads[worker_id] -= job.compute_cost
        self._queued_count -= 1
        return job

    def _steal_victim(self) -> int | None:
        best: int | None = None
        best_load = 0.0
        for worker_id, queue in enumerate(self._queues):
            if queue and (best is None or self._loads[worker_id] > best_load):
                best, best_load = worker_id, self._loads[worker_id]
        return best

    def _next_for(self, worker_id: int) -> Job | None:
        if self._queues[worker_id]:
            return self._take(worker_id, self._queues[worker_id].popleft())
        victim = self._steal_victim()
        if victim is None:
            return None
        # steal from the loaded tail
        return self._take(victim, self._queues[victim].pop())

    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        for worker_id in range(len(self._queues)):
            job = self._next_for(worker_id)
            if job is not None:
                yield worker_id, [job]

    def refill(self, worker_id: int) -> list[Job] | None:
        job = self._next_for(worker_id)
        return [job] if job is not None else None

    def queued_jobs(self) -> list[Job]:
        return [job for queue in self._queues for job in queue]

    @property
    def n_queued(self) -> int:
        return self._queued_count

    def withdraw(self, job_id: int) -> Job | None:
        for worker_id, queue in enumerate(self._queues):
            for job in queue:
                if job.job_id == job_id:
                    queue.remove(job)
                    return self._take(worker_id, job)
        return None

    def withdraw_all(self) -> list[Job]:
        dropped = [job for queue in self._queues for job in queue]
        for queue in self._queues:
            queue.clear()
        self._loads = [0.0] * len(self._queues)
        self._queued_count = 0
        return dropped


class PriorityPolicy(DispatchPolicy):
    """Robin Hood over a priority-ordered queue.

    The master queue is sorted once at :meth:`plan` time by descending
    priority, ties broken by submission order, and then drained exactly like
    :class:`RobinHoodPolicy`: one job per slave up front, refill whoever
    answers.  With no priorities (or all equal) the policy *is* Robin Hood.

    Parameters
    ----------
    priority:
        Either a mapping ``{job_id: priority}`` (missing ids fall back to
        ``default``) or a callable ``job -> priority``.  Higher runs first.
    default:
        Priority of jobs the mapping does not name.
    """

    name = "priority"

    def __init__(
        self,
        priority: Any | Callable[[Job], float] | None = None,
        default: float = 0.0,
    ):
        if priority is not None and not callable(priority) and not hasattr(priority, "get"):
            raise SchedulingError(
                "priority must be a {job_id: priority} mapping or a "
                "job -> priority callable"
            )
        self._priority = priority
        self._default = float(default)

    def priority_of(self, job: Job) -> float:
        if self._priority is None:
            return self._default
        if callable(self._priority):
            return float(self._priority(job))
        return float(self._priority.get(job.job_id, self._default))

    def plan(self, jobs: Sequence[Job], n_workers: int) -> None:
        ordered = sorted(
            enumerate(jobs), key=lambda pair: (-self.priority_of(pair[1]), pair[0])
        )
        self._queue: deque[Job] = deque(job for _, job in ordered)
        self._n_workers = n_workers

    def initial_wave(self) -> Iterator[tuple[int, list[Job]]]:
        for worker_id in range(min(self._n_workers, len(self._queue))):
            yield worker_id, [self._queue.popleft()]

    def refill(self, worker_id: int) -> list[Job] | None:
        if self._queue:
            return [self._queue.popleft()]
        return None

    def queued_jobs(self) -> list[Job]:
        return list(self._queue)

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def withdraw(self, job_id: int) -> Job | None:
        for job in self._queue:
            if job.job_id == job_id:
                self._queue.remove(job)
                return job
        return None

    def withdraw_all(self) -> list[Job]:
        dropped = list(self._queue)
        self._queue.clear()
        return dropped


class ScheduleStream:
    """Pull-driven incremental form of the paper's master loop (Fig. 4).

    This is the **only** master loop in the system: every scheduler is a
    :class:`DispatchPolicy` plugged into it, and the historical
    run-to-completion spelling is just a stream drained in one call
    (``Scheduler.run`` is ``stream(...).finish()``).  The futures API
    (:mod:`repro.api.futures`) builds on the same object:

    * construction sends the policy's initial wave (one job per slave for
      Robin Hood, the full pre-partition for static blocks, one chunk per
      slave for the chunked policy);
    * each :meth:`collect_next` blocks until any worker answers, asks the
      policy how to refill the freed worker, and returns the completed job
      -- ``MPI_Probe`` on any source followed by ``MPI_Recv_Obj``;
    * :meth:`try_collect_next` is the non-blocking variant (``MPI_Iprobe``);
    * :meth:`cancel_job` withdraws a job that is still queued master-side;
    * :meth:`finish` drains whatever is left, sends the stop messages and
      finalizes the backend into the familiar :class:`ScheduleOutcome`.

    Driving a stream to exhaustion performs the exact same backend call
    sequence as the historical run-to-completion loops did -- on the
    simulated backend the virtual times are bit-identical for every shipped
    policy (the scheduler/backend matrix test pins this).
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
        policy: DispatchPolicy | None = None,
        scheduler_name: str | None = None,
    ):
        _check_jobs(jobs)
        self.backend = backend
        self.strategy = strategy
        self.policy = policy if policy is not None else RobinHoodPolicy()
        self.scheduler_name = scheduler_name or self.policy.name
        self.n_jobs = len(jobs)
        self._in_flight = 0
        self._completed: list[CompletedJob] = []
        self._cancelled: list[Job] = []
        self._outcome: ScheduleOutcome | None = None
        backend.on_run_start(len(jobs))
        self.policy.plan(list(jobs), backend.n_workers)
        for worker_id, wave in self.policy.initial_wave():
            self._dispatch(worker_id, wave)

    def _dispatch(self, worker_id: int, wave: list[Job]) -> None:
        if not wave:
            return
        if self.policy.chunked:
            messages = (
                [_prepare(self.backend, self.strategy, job) for job in wave]
                if getattr(self.backend, "requires_payload", True)
                else None
            )
            self.backend.dispatch_batch(worker_id, wave, messages)
        else:
            for job in wave:
                self.backend.dispatch(
                    worker_id, job, _prepare(self.backend, self.strategy, job)
                )
        self._in_flight += len(wave)

    # -- state -------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Jobs not yet collected (queued master-side or on a worker)."""
        return self.policy.n_queued + self._in_flight

    @property
    def completed(self) -> list[CompletedJob]:
        """Results collected so far, in completion order."""
        return list(self._completed)

    @property
    def cancelled_jobs(self) -> list[Job]:
        """Jobs withdrawn from the queue before they were dispatched."""
        return list(self._cancelled)

    def poll(self) -> bool:
        """Whether :meth:`collect_next` would return without blocking."""
        return self._in_flight > 0 and self.backend.poll()

    # -- collection --------------------------------------------------------------
    def _account(self, done: CompletedJob) -> CompletedJob:
        self._completed.append(done)
        self._in_flight -= 1
        wave = self.policy.refill(done.worker_id)
        if wave:
            self._dispatch(done.worker_id, wave)
        return done

    def collect_next(self, timeout: float | None = None) -> CompletedJob:
        """Block until the next result arrives; refill the freed worker.

        ``timeout`` bounds the wait on backends with a real clock
        (multiprocessing, remote); immediate backends ignore it.
        """
        if self.remaining == 0:
            raise SchedulingError("stream exhausted: every job was collected")
        if timeout is None:
            # let the backend apply its own safety default (multiprocessing
            # uses 300 s; immediate backends have none)
            return self._account(self.backend.collect())
        return self._account(self.backend.collect(timeout))

    def try_collect_next(self) -> CompletedJob | None:
        """Collect one result if ready now, else ``None``.  Never blocks."""
        if self._in_flight == 0:
            return None
        done = self.backend.try_collect()
        if done is None:
            return None
        return self._account(done)

    def __iter__(self) -> Iterator[CompletedJob]:
        while self.remaining:
            yield self.collect_next()

    # -- cancellation ------------------------------------------------------------
    def cancel_job(self, job_id: int) -> bool:
        """Withdraw a still-queued job; ``False`` once it is on a worker."""
        job = self.policy.withdraw(job_id)
        if job is None:
            return False
        self._cancelled.append(job)
        return True

    def cancel_pending(self) -> list[Job]:
        """Withdraw every job not yet dispatched (in-flight ones finish)."""
        dropped = self.policy.withdraw_all()
        self._cancelled.extend(dropped)
        return dropped

    # -- termination -------------------------------------------------------------
    def finish(self) -> ScheduleOutcome:
        """Drain remaining results, stop the slaves, finalize the backend."""
        if self._outcome is not None:
            return self._outcome
        while self.remaining:
            self.collect_next()
        # tell every slave to stop working (the empty message of Fig. 4)
        for worker_id in range(self.backend.n_workers):
            self.backend.send_stop(worker_id)
        stats = self.backend.finalize()
        self._outcome = ScheduleOutcome(
            completed=self._completed,
            stats=stats,
            scheduler_name=self.scheduler_name,
            extra=self.policy.outcome_extra(),
        )
        return self._outcome


class Scheduler(abc.ABC):
    """Thin shell pairing a name with a :class:`DispatchPolicy` factory.

    Every scheduler streams: :meth:`stream` opens the one master loop with a
    fresh policy, and :meth:`run` is ``stream(...).finish()``.  Subclasses
    only provide :meth:`make_policy` (plus constructor parameters the policy
    needs) and a :attr:`name`.
    """

    name: str = "abstract"
    #: every policy-backed scheduler collects one answer at a time; kept as
    #: an attribute so duck-typed third-party schedulers can advertise it too
    supports_streaming: bool = True

    @abc.abstractmethod
    def make_policy(self) -> DispatchPolicy:
        """A fresh dispatch policy for one run (policies are stateful)."""

    def stream(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleStream:
        """An incremental :class:`ScheduleStream` over ``jobs``."""
        return ScheduleStream(
            jobs, backend, strategy,
            policy=self.make_policy(), scheduler_name=self.name,
        )

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        """Dispatch every job, collect every result, finalize the backend."""
        # the run-to-completion loop is the streamed loop, drained
        return self.stream(jobs, backend, strategy).finish()


#: named schedulers usable from the command line and the benchmarks
SCHEDULERS: dict[str, Any] = {}


def register_scheduler(name: str, factory: Callable[..., Scheduler] | None = None):
    """Register a scheduler factory (usually the class itself) under ``name``.

    Either call directly (``register_scheduler("mine", MyScheduler)``) or use
    as a decorator factory::

        @register_scheduler("mine")
        class MyScheduler(Scheduler):
            name = "mine"
            def make_policy(self):
                return MyPolicy()

    Registered names are accepted everywhere a scheduler is spelled as a
    string: ``ValuationSession(scheduler=...)``, ``RunConfig(scheduler=...)``
    and the ``repro-bench --scheduler`` family of CLI flags.
    """
    if not name:
        raise SchedulingError("scheduler names must be non-empty strings")

    def _register(fn: Callable[..., Scheduler]) -> Callable[..., Scheduler]:
        SCHEDULERS[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


@register_scheduler("robin_hood")
class RobinHoodScheduler(Scheduler):
    """The paper's dynamic master/worker loop (Fig. 4)."""

    name = "robin_hood"

    def make_policy(self) -> DispatchPolicy:
        return RobinHoodPolicy()


@register_scheduler("static_block")
class StaticBlockScheduler(Scheduler):
    """Pre-partition the portfolio into contiguous blocks, one per worker.

    No dynamic balancing: a worker that drew the expensive block becomes the
    critical path.  Used as the baseline of the scheduler ablation benchmark.
    """

    name = "static_block"

    def make_policy(self) -> DispatchPolicy:
        return StaticBlockPolicy()


@register_scheduler("chunked_robin_hood")
class ChunkedRobinHoodScheduler(Scheduler):
    """Robin Hood dispatching ``chunk_size`` jobs per message.

    "The first idea is to gather several pricing problems and send them all
    together to reduce the communication latency: it is always advisable to
    send a single large message rather [than] several smaller messages."
    Chunks go down the wire through ``WorkerBackend.dispatch_batch``: one
    queue message on the multiprocessing backend, one TCP frame on the
    remote backend, and a single charged message latency on the simulated
    cluster.
    """

    name = "chunked_robin_hood"

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    def make_policy(self) -> DispatchPolicy:
        return ChunkedPolicy(chunk_size=self.chunk_size)


@register_scheduler("work_stealing")
class WorkStealingScheduler(Scheduler):
    """Static blocks with dynamic stealing from the most-loaded tail.

    Combines the locality of :class:`StaticBlockScheduler` (each worker owns
    a contiguous block) with the adaptivity of Robin Hood: a worker that
    drains its own block steals the last still-queued job of whichever
    worker has the most estimated compute left.
    """

    name = "work_stealing"

    def make_policy(self) -> DispatchPolicy:
        return WorkStealingPolicy()


@register_scheduler("priority")
class PriorityScheduler(Scheduler):
    """Robin Hood dispatching the highest-priority queued job first.

    ``priority`` is a ``{job_id: priority}`` mapping or a ``job -> priority``
    callable; higher values are dispatched earlier, ties keep submission
    order, and with no priorities at all the behaviour is plain Robin Hood.
    This is how the ``repro-serve`` daemon honours per-position request
    priorities without a dedicated master loop -- the
    :class:`DispatchPolicy` plugin surface carries the feature.
    """

    name = "priority"

    def __init__(
        self,
        priority: Any | Callable[[Job], float] | None = None,
        default: float = 0.0,
    ):
        # validate eagerly, not at plan() time inside a running campaign
        PriorityPolicy(priority=priority, default=default)
        self.priority = priority
        self.default = float(default)

    def make_policy(self) -> DispatchPolicy:
        return PriorityPolicy(priority=self.priority, default=self.default)


def simulate_hierarchical(
    jobs: Sequence[Job],
    n_workers: int,
    n_groups: int,
    strategy_name: str = "serialized_load",
    comm: CommunicationModel | None = None,
    worker_speed: float = 1.0,
    chunk_size: int = 1,
) -> dict[str, Any]:
    """Two-level master organisation evaluated on the simulated cluster.

    "one way of encompassing this difficulty is to divide the nodes into
    sub-groups, each group having its own master.  Then, each sub-master could
    apply a naive load balancing but since it has fewer slave processes to
    monitor the speedups would be better."

    The global master deals jobs to ``n_groups`` sub-masters round-robin (a
    cheap name-only message per job); each sub-master then runs its own Robin
    Hood loop over its share of the workers.  Each group uses an independent
    :class:`SimulatedClusterBackend`; the reported makespan is the slowest
    group, plus the global master's dealing time.

    Returns a dictionary with ``total_time``, ``group_times`` and
    ``master_dealing_time``.
    """
    from repro.core.strategies import get_strategy

    if n_groups < 1:
        raise SchedulingError("n_groups must be >= 1")
    if n_workers < n_groups:
        raise SchedulingError("need at least one worker per group")
    _check_jobs(jobs)
    base_comm = comm if comm is not None else CommunicationModel()

    # the global master only forwards file names to the sub-masters
    dealing_time = len(jobs) * (
        base_comm.nfs_master_overhead
        + base_comm.network.transfer_time(base_comm.name_message_bytes)
    )

    # split workers and jobs across groups (round-robin keeps the expensive
    # jobs spread out, like the paper's single-master dealing order)
    group_sizes = [n_workers // n_groups] * n_groups
    for i in range(n_workers % n_groups):
        group_sizes[i] += 1
    group_jobs: list[list[Job]] = [[] for _ in range(n_groups)]
    for index, job in enumerate(jobs):
        group_jobs[index % n_groups].append(job)

    scheduler: Scheduler
    if chunk_size > 1:
        scheduler = ChunkedRobinHoodScheduler(chunk_size=chunk_size)
    else:
        scheduler = RobinHoodScheduler()

    group_times: list[float] = []
    for size, sub_jobs in zip(group_sizes, group_jobs):
        if not sub_jobs:
            group_times.append(0.0)
            continue
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(size, speed=worker_speed),
            strategy=strategy_name,
            comm=CommunicationModel(network=base_comm.network, nfs=base_comm.nfs),
        )
        outcome = scheduler.run(sub_jobs, backend, get_strategy(strategy_name))
        group_times.append(outcome.total_time)

    return {
        "total_time": dealing_time + max(group_times),
        "group_times": group_times,
        "master_dealing_time": dealing_time,
        "n_groups": n_groups,
        "n_workers": n_workers,
    }
