"""Load-balancing schedulers for the portfolio valuation benchmark.

The paper uses "a simplified 'Robbin Hood' strategy ... First, the master
sends one job to each slave and as soon as a slave finishes its computation
and sends its answer back, it is assigned a new job.  This mechanism goes on
until the whole portfolio has been treated" (Fig. 4).  Its conclusion sketches
two refinements: "gather several pricing problems and send them all together
to reduce the communication latency" and "divide the nodes into sub-groups,
each group having its own master".

This module implements:

* :class:`RobinHoodScheduler` -- the paper's dynamic master/worker loop;
* :class:`StaticBlockScheduler` -- a static pre-partitioning baseline (what
  the dynamic strategy is implicitly compared against);
* :class:`ChunkedRobinHoodScheduler` -- Robin Hood with job batching (the
  first refinement);
* :func:`simulate_hierarchical` -- the sub-master organisation (the second
  refinement), evaluated on the simulated cluster.

All schedulers drive a :class:`~repro.cluster.backends.base.WorkerBackend`
through the same dispatch/collect interface, so the same code path runs on
the sequential backend, on real ``multiprocessing`` workers and on the
simulated cluster.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cluster.backends.base import BackendStats, CompletedJob, Job, WorkerBackend
from repro.cluster.simcluster.comm import CommunicationModel
from repro.cluster.simcluster.node import ClusterSpec
from repro.cluster.simcluster.simulator import SimulatedClusterBackend
from repro.core.strategies import TransmissionStrategy
from repro.errors import SchedulingError

__all__ = [
    "ScheduleOutcome",
    "Scheduler",
    "RobinHoodScheduler",
    "StaticBlockScheduler",
    "ChunkedRobinHoodScheduler",
    "simulate_hierarchical",
    "SCHEDULERS",
]


@dataclass
class ScheduleOutcome:
    """Everything the scheduler hands back to the runner."""

    completed: list[CompletedJob]
    stats: BackendStats
    scheduler_name: str
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return self.stats.total_time

    @property
    def errors(self) -> list[CompletedJob]:
        return [job for job in self.completed if job.error is not None]


def _prepare(backend: WorkerBackend, strategy: TransmissionStrategy, job: Job):
    """Prepare the real payload only for backends that execute it."""
    if getattr(backend, "requires_payload", True):
        return strategy.prepare(job)
    return None


def _check_jobs(jobs: Sequence[Job]) -> None:
    if not jobs:
        raise SchedulingError("cannot schedule an empty job list")
    seen: set[int] = set()
    for job in jobs:
        if job.job_id in seen:
            raise SchedulingError(f"duplicate job id {job.job_id}")
        seen.add(job.job_id)


class Scheduler(abc.ABC):
    """Common interface of the load balancers."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        """Dispatch every job, collect every result, finalize the backend."""


class RobinHoodScheduler(Scheduler):
    """The paper's dynamic master/worker loop (Fig. 4)."""

    name = "robin_hood"

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        _check_jobs(jobs)
        backend.on_run_start(len(jobs))
        completed: list[CompletedJob] = []
        queue = list(jobs)
        n_initial = min(backend.n_workers, len(queue))

        # first, one job per slave
        for worker_id in range(n_initial):
            job = queue.pop(0)
            backend.dispatch(worker_id, job, _prepare(backend, strategy, job))
        in_flight = n_initial

        # then feed each slave as soon as it answers
        while queue:
            done = backend.collect()
            completed.append(done)
            job = queue.pop(0)
            backend.dispatch(done.worker_id, job, _prepare(backend, strategy, job))

        # drain the remaining in-flight jobs
        for _ in range(in_flight):
            completed.append(backend.collect())

        # tell every slave to stop working (the empty message of Fig. 4)
        for worker_id in range(backend.n_workers):
            backend.send_stop(worker_id)

        stats = backend.finalize()
        return ScheduleOutcome(completed=completed, stats=stats, scheduler_name=self.name)


class StaticBlockScheduler(Scheduler):
    """Pre-partition the portfolio into contiguous blocks, one per worker.

    No dynamic balancing: a worker that drew the expensive block becomes the
    critical path.  Used as the baseline of the scheduler ablation benchmark.
    """

    name = "static_block"

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        _check_jobs(jobs)
        backend.on_run_start(len(jobs))
        n_workers = backend.n_workers
        completed: list[CompletedJob] = []

        # contiguous blocks, as a naive static partitioning would do
        for index, job in enumerate(jobs):
            worker_id = min(index * n_workers // len(jobs), n_workers - 1)
            backend.dispatch(worker_id, job, _prepare(backend, strategy, job))
        for _ in range(len(jobs)):
            completed.append(backend.collect())
        for worker_id in range(n_workers):
            backend.send_stop(worker_id)
        stats = backend.finalize()
        return ScheduleOutcome(completed=completed, stats=stats, scheduler_name=self.name)


class ChunkedRobinHoodScheduler(Scheduler):
    """Robin Hood dispatching ``chunk_size`` jobs per message.

    "The first idea is to gather several pricing problems and send them all
    together to reduce the communication latency: it is always advisable to
    send a single large message rather [than] several smaller messages."
    Dispatching still goes through the per-job backend interface, but on
    backends that expose ``dispatch_batch`` (the simulated cluster) a single
    message latency is charged per chunk instead of per job.
    """

    name = "chunked_robin_hood"

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size)

    def _dispatch_chunk(
        self,
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
        worker_id: int,
        chunk: list[Job],
    ) -> None:
        batch = getattr(backend, "dispatch_batch", None)
        if batch is not None:
            batch(worker_id, chunk, [
                _prepare(backend, strategy, job) for job in chunk
            ] if getattr(backend, "requires_payload", True) else None)
        else:
            for job in chunk:
                backend.dispatch(worker_id, job, _prepare(backend, strategy, job))

    def run(
        self,
        jobs: Sequence[Job],
        backend: WorkerBackend,
        strategy: TransmissionStrategy,
    ) -> ScheduleOutcome:
        _check_jobs(jobs)
        backend.on_run_start(len(jobs))
        completed: list[CompletedJob] = []
        chunks = [
            list(jobs[i : i + self.chunk_size]) for i in range(0, len(jobs), self.chunk_size)
        ]
        queue = list(chunks)
        n_initial = min(backend.n_workers, len(queue))
        outstanding: dict[int, int] = {}

        for worker_id in range(n_initial):
            chunk = queue.pop(0)
            self._dispatch_chunk(backend, strategy, worker_id, chunk)
            outstanding[worker_id] = outstanding.get(worker_id, 0) + len(chunk)

        remaining = sum(outstanding.values()) + sum(len(c) for c in queue)
        while remaining:
            done = backend.collect()
            completed.append(done)
            remaining -= 1
            outstanding[done.worker_id] -= 1
            # hand the worker a new chunk once it drained its previous one
            if outstanding[done.worker_id] == 0 and queue:
                chunk = queue.pop(0)
                self._dispatch_chunk(backend, strategy, done.worker_id, chunk)
                outstanding[done.worker_id] += len(chunk)

        for worker_id in range(backend.n_workers):
            backend.send_stop(worker_id)
        stats = backend.finalize()
        return ScheduleOutcome(
            completed=completed,
            stats=stats,
            scheduler_name=self.name,
            extra={"chunk_size": self.chunk_size},
        )


def simulate_hierarchical(
    jobs: Sequence[Job],
    n_workers: int,
    n_groups: int,
    strategy_name: str = "serialized_load",
    comm: CommunicationModel | None = None,
    worker_speed: float = 1.0,
    chunk_size: int = 1,
) -> dict[str, Any]:
    """Two-level master organisation evaluated on the simulated cluster.

    "one way of encompassing this difficulty is to divide the nodes into
    sub-groups, each group having its own master.  Then, each sub-master could
    apply a naive load balancing but since it has fewer slave processes to
    monitor the speedups would be better."

    The global master deals jobs to ``n_groups`` sub-masters round-robin (a
    cheap name-only message per job); each sub-master then runs its own Robin
    Hood loop over its share of the workers.  Each group uses an independent
    :class:`SimulatedClusterBackend`; the reported makespan is the slowest
    group, plus the global master's dealing time.

    Returns a dictionary with ``total_time``, ``group_times`` and
    ``master_dealing_time``.
    """
    from repro.core.strategies import get_strategy

    if n_groups < 1:
        raise SchedulingError("n_groups must be >= 1")
    if n_workers < n_groups:
        raise SchedulingError("need at least one worker per group")
    _check_jobs(jobs)
    base_comm = comm if comm is not None else CommunicationModel()

    # the global master only forwards file names to the sub-masters
    dealing_time = len(jobs) * (
        base_comm.nfs_master_overhead
        + base_comm.network.transfer_time(base_comm.name_message_bytes)
    )

    # split workers and jobs across groups (round-robin keeps the expensive
    # jobs spread out, like the paper's single-master dealing order)
    group_sizes = [n_workers // n_groups] * n_groups
    for i in range(n_workers % n_groups):
        group_sizes[i] += 1
    group_jobs: list[list[Job]] = [[] for _ in range(n_groups)]
    for index, job in enumerate(jobs):
        group_jobs[index % n_groups].append(job)

    scheduler: Scheduler
    if chunk_size > 1:
        scheduler = ChunkedRobinHoodScheduler(chunk_size=chunk_size)
    else:
        scheduler = RobinHoodScheduler()

    group_times: list[float] = []
    for size, sub_jobs in zip(group_sizes, group_jobs):
        if not sub_jobs:
            group_times.append(0.0)
            continue
        backend = SimulatedClusterBackend(
            ClusterSpec.homogeneous(size, speed=worker_speed),
            strategy=strategy_name,
            comm=CommunicationModel(network=base_comm.network, nfs=base_comm.nfs),
        )
        outcome = scheduler.run(sub_jobs, backend, get_strategy(strategy_name))
        group_times.append(outcome.total_time)

    return {
        "total_time": dealing_time + max(group_times),
        "group_times": group_times,
        "master_dealing_time": dealing_time,
        "n_groups": n_groups,
        "n_workers": n_workers,
    }


#: named schedulers usable from the command line and the benchmarks
SCHEDULERS: dict[str, Any] = {
    RobinHoodScheduler.name: RobinHoodScheduler,
    StaticBlockScheduler.name: StaticBlockScheduler,
    ChunkedRobinHoodScheduler.name: ChunkedRobinHoodScheduler,
}
