"""The published tables of the paper, as data.

Having the published numbers available programmatically lets users (and the
benchmark harness) compare a regenerated
:class:`~repro.core.speedup.SpeedupTable` against the original measurements
row by row, and quantify how well a given cost/communication model reproduces
the published shape.

The numbers are transcribed verbatim from the paper:

* Table I   -- speedup of the Premia non-regression tests;
* Table II  -- 10,000-option toy portfolio, three transmission strategies;
* Table III -- 7,931-claim realistic portfolio, three transmission strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.speedup import SpeedupTable
from repro.errors import PortfolioError

__all__ = [
    "PAPER_TABLE_I",
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
    "paper_speedup_table",
    "ShapeComparison",
    "compare_with_paper",
]

#: Table I -- ``{n_cpus: time_seconds}`` (serialized-load / sload strategy)
PAPER_TABLE_I: dict[int, float] = {
    2: 838.004, 4: 285.356, 6: 172.146, 8: 124.78, 10: 97.1792, 16: 67.9677,
    32: 45.6611, 64: 34.2828, 96: 31.4682, 128: 30.5574, 160: 16.1006,
    192: 30.7013, 224: 30.5024, 256: 31.3172,
}

#: Table II -- ``{strategy: {n_cpus: time_seconds}}``
PAPER_TABLE_II: dict[str, dict[int, float]] = {
    "full_load": {
        2: 8.85665, 4: 3.55046, 8: 3.86341, 10: 4.06038, 12: 3.9264, 14: 3.9624,
        16: 4.05038, 18: 3.9524, 20: 4.13337, 24: 3.77643, 28: 3.9504, 32: 4.35934,
        36: 4.05938, 40: 4.06538, 45: 4.12437, 50: 4.19136,
    },
    "nfs": {
        2: 16.3965, 4: 4.91225, 8: 2.52961, 10: 2.08968, 12: 1.77673, 14: 1.57676,
        16: 1.40579, 18: 1.27181, 20: 1.17682, 24: 1.02784, 28: 0.928859, 32: 0.848871,
        36: 0.786881, 40: 0.832873, 45: 0.768884, 50: 0.738887,
    },
    "serialized_load": {
        2: 7.17891, 4: 1.73774, 8: 1.81472, 10: 1.87771, 12: 1.88571, 14: 1.81372,
        16: 1.9367, 18: 1.9497, 20: 1.87272, 24: 1.84772, 28: 1.77273, 32: 1.83072,
        36: 1.75773, 40: 1.81572, 45: 1.78273, 50: 1.70474,
    },
}

#: Table III -- ``{strategy: {n_cpus: time_seconds}}`` (320/384/512 rows exist
#: only for the full-load and serialized-load columns in the paper)
PAPER_TABLE_III: dict[str, dict[int, float]] = {
    "full_load": {
        2: 5770.16, 4: 1980.35, 6: 1154.05, 8: 823.056, 10: 641.166, 16: 389.295,
        32: 187.441, 64: 93.2008, 96: 61.5176, 128: 46.7399, 160: 38.4812,
        192: 31.5312, 224: 27.2929, 256: 24.4743, 320: 26.1740, 384: 20.0550,
        512: 19.7960,
    },
    "nfs": {
        2: 5799.66, 4: 1939.46, 6: 1161.25, 8: 828.07, 10: 645.544, 16: 389.097,
        32: 193.937, 64: 100.384, 96: 69.7884, 128: 54.8667, 160: 41.9726,
        192: 35.7536, 224: 31.3362, 256: 28.2047,
    },
    "serialized_load": {
        2: 5776.33, 4: 1925.29, 6: 1157.22, 8: 840.403, 10: 641.096, 16: 386.745,
        32: 189.354, 64: 94.7316, 96: 63.1974, 128: 47.6968, 160: 41.1997,
        192: 33.5979, 224: 31.5822, 256: 27.8228, 320: 26.7879, 384: 22.5696,
        512: 20.1779,
    },
}


def paper_speedup_table(table: str, strategy: str = "serialized_load") -> SpeedupTable:
    """Return one published column as a :class:`SpeedupTable`.

    Parameters
    ----------
    table:
        ``"I"``, ``"II"`` or ``"III"`` (also accepts ``"1"``, ``"2"``, ``"3"``).
    strategy:
        Transmission strategy column, for Tables II and III.
    """
    normalized = table.strip().upper()
    if normalized in ("I", "1", "TABLE1", "TABLE I"):
        return SpeedupTable.from_times("paper Table I", PAPER_TABLE_I)
    if normalized in ("II", "2", "TABLE2", "TABLE II"):
        source = PAPER_TABLE_II
        label = f"paper Table II ({strategy})"
    elif normalized in ("III", "3", "TABLE3", "TABLE III"):
        source = PAPER_TABLE_III
        label = f"paper Table III ({strategy})"
    else:
        raise PortfolioError(f"unknown table {table!r}; expected I, II or III")
    if strategy not in source:
        raise PortfolioError(
            f"unknown strategy {strategy!r}; expected one of {sorted(source)}"
        )
    return SpeedupTable.from_times(label, source[strategy])


@dataclass
class ShapeComparison:
    """Row-by-row comparison of a measured table against a published one."""

    n_common_rows: int
    max_time_ratio: float
    mean_time_ratio: float
    max_ratio_difference: float
    mean_ratio_difference: float

    @property
    def within_factor_two(self) -> bool:
        """Whether every common row's time is within a factor 2 of the paper."""
        return self.max_time_ratio <= 2.0 and self.max_time_ratio >= 0.0


def compare_with_paper(measured: SpeedupTable, reference: SpeedupTable) -> ShapeComparison:
    """Compare a measured sweep against a published column.

    Only CPU counts present in both tables are compared.  ``time_ratio`` is
    ``max(measured, paper) / min(measured, paper)`` (so 1.0 is a perfect
    match); ``ratio_difference`` is the absolute difference of the speedup
    ratios.
    """
    common = sorted(set(measured.cpu_counts()) & set(reference.cpu_counts()))
    if not common:
        raise PortfolioError("the two tables have no CPU count in common")
    time_ratios = []
    ratio_diffs = []
    for n_cpus in common:
        measured_row = measured.row_for(n_cpus)
        reference_row = reference.row_for(n_cpus)
        hi = max(measured_row.time, reference_row.time)
        lo = min(measured_row.time, reference_row.time)
        time_ratios.append(hi / lo if lo > 0 else float("inf"))
        ratio_diffs.append(abs(measured_row.ratio - reference_row.ratio))
    return ShapeComparison(
        n_common_rows=len(common),
        max_time_ratio=max(time_ratios),
        mean_time_ratio=sum(time_ratios) / len(time_ratios),
        max_ratio_difference=max(ratio_diffs),
        mean_ratio_difference=sum(ratio_diffs) / len(ratio_diffs),
    )
