"""Run portfolios against a backend and sweep cluster sizes.

This used to be the top layer of the benchmark; it now hosts the canonical
:class:`RunReport` plus **thin deprecation shims** -- :func:`run_jobs`,
:func:`run_portfolio`, :func:`sweep_cpu_counts` and
:func:`compare_strategies` delegate to the unified
:class:`~repro.api.session.ValuationSession` facade, which is the preferred
entry point for new code::

    from repro.api import ValuationSession

    session = ValuationSession(backend="simulated", strategy="serialized_load")
    result = session.sweep(portfolio, cpu_counts=[2, 4, 8])

The shims keep the historical signatures and return the unwrapped
:class:`RunReport` / :class:`~repro.core.speedup.SpeedupTable` objects, so
existing scripts and the whole seed test-suite keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cluster.backends.base import Job, WorkerBackend
from repro.cluster.costmodel import CostModel
from repro.cluster.simcluster.comm import STRATEGY_NAMES, CommunicationModel
from repro.core.portfolio import Portfolio
from repro.core.scheduler import Scheduler, ScheduleOutcome
from repro.core.speedup import SpeedupTable
from repro.core.strategies import TransmissionStrategy

__all__ = ["RunReport", "run_jobs", "run_portfolio", "sweep_cpu_counts", "compare_strategies"]


@dataclass
class RunReport:
    """Outcome of valuing one portfolio on one cluster configuration."""

    n_jobs: int
    n_workers: int
    strategy: str
    scheduler: str
    total_time: float
    master_busy: float
    worker_busy: dict[int, float]
    bytes_sent: int
    results: dict[int, dict[str, Any] | None] = field(default_factory=dict)
    errors: dict[int, str] = field(default_factory=dict)
    category_times: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def n_cpus(self) -> int:
        """The paper's "number of CPUs" = workers + the master."""
        return self.n_workers + 1

    @property
    def mean_worker_utilisation(self) -> float:
        """Average fraction of the makespan the workers spent busy."""
        if not self.worker_busy or self.total_time <= 0:
            return 0.0
        busy = sum(self.worker_busy.values()) / len(self.worker_busy)
        return busy / self.total_time

    def prices(self) -> dict[int, float]:
        """Job id -> price, for runs that actually executed the problems."""
        return {
            job_id: result["price"]
            for job_id, result in self.results.items()
            if result is not None and "price" in result
        }

    @classmethod
    def from_outcome(
        cls,
        outcome: ScheduleOutcome,
        jobs: Sequence[Job],
        strategy_name: str,
    ) -> "RunReport":
        category_by_id = {job.job_id: job.category for job in jobs}
        category_times: dict[str, float] = {}
        by_id: dict[int, Any] = {}
        for completed in outcome.completed:
            category = category_by_id.get(completed.job_id, "generic")
            category_times[category] = category_times.get(category, 0.0) + completed.compute_time
            by_id[completed.job_id] = completed
        # results are keyed in *submission* order, whatever order the workers
        # answered in, so reports are deterministic across backends and runs
        results: dict[int, dict[str, Any] | None] = {}
        errors: dict[int, str] = {}
        for job in jobs:
            completed = by_id.get(job.job_id)
            if completed is None:
                continue
            results[job.job_id] = completed.result
            if completed.error is not None:
                errors[job.job_id] = completed.error
        return cls(
            n_jobs=len(jobs),
            n_workers=outcome.stats.n_workers,
            strategy=strategy_name,
            scheduler=outcome.scheduler_name,
            total_time=outcome.stats.total_time,
            master_busy=outcome.stats.master_busy,
            worker_busy=dict(outcome.stats.worker_busy),
            bytes_sent=outcome.stats.bytes_sent,
            results=results,
            errors=errors,
            category_times=category_times,
            extra=dict(outcome.stats.extra),
        )


def run_jobs(
    jobs: Sequence[Job],
    backend: WorkerBackend,
    strategy: TransmissionStrategy | str = "serialized_load",
    scheduler: Scheduler | None = None,
) -> RunReport:
    """Value a prepared job list on a backend and return the report.

    .. deprecated:: 1.0
        Thin shim over :meth:`repro.api.session.ValuationSession.run`.
    """
    from repro.api.session import ValuationSession

    session = ValuationSession(backend=backend, strategy=strategy, scheduler=scheduler)
    return session.run(jobs).report


def run_portfolio(
    portfolio: Portfolio,
    backend: WorkerBackend,
    strategy: TransmissionStrategy | str = "serialized_load",
    scheduler: Scheduler | None = None,
    cost_model: CostModel | None = None,
    store=None,
    attach_problems: bool | None = None,
) -> RunReport:
    """Value a :class:`Portfolio` on a backend.

    ``attach_problems`` defaults to ``True`` for executing backends without a
    problem store (so workers can rebuild the problems from memory) and
    ``False`` otherwise.

    .. deprecated:: 1.0
        Thin shim over :meth:`repro.api.session.ValuationSession.run`.
    """
    from repro.api.session import ValuationSession

    session = ValuationSession(
        backend=backend, strategy=strategy, scheduler=scheduler, cost_model=cost_model
    )
    return session.run(portfolio, store=store, attach_problems=attach_problems).report


def sweep_cpu_counts(
    jobs: Sequence[Job],
    cpu_counts: Sequence[int],
    strategy: str = "serialized_load",
    scheduler_factory: Callable[[], Scheduler] | None = None,
    comm: CommunicationModel | None = None,
    share_nfs_cache: bool = True,
    label: str | None = None,
    comm_factory: Callable[[], CommunicationModel] | None = None,
) -> SpeedupTable:
    """Simulate the same workload over several cluster sizes.

    Reproduces one column of the paper's tables: for each ``n_cpus`` a fresh
    simulated cluster with ``n_cpus - 1`` workers is driven by the scheduler,
    and the virtual makespans are collected into a :class:`SpeedupTable`.

    ``share_nfs_cache=True`` reuses the same :class:`CommunicationModel`
    (hence the same NFS server cache) across the sweep, as happened on the
    paper's physical cluster where successive experiments re-read the same
    portfolio files; pass ``False`` to model independent cold runs (built by
    ``comm_factory`` when given, otherwise by copying ``comm`` with a cold
    cache -- custom NFS settings are preserved either way).

    .. deprecated:: 1.0
        Thin shim over :meth:`repro.api.session.ValuationSession.sweep`.
    """
    from repro.api.session import ValuationSession

    session = ValuationSession(
        backend="simulated",
        strategy=strategy,
        scheduler=scheduler_factory,
        comm=comm,
        comm_factory=comm_factory,
    )
    return session.sweep(
        jobs,
        cpu_counts,
        strategy=strategy,
        share_nfs_cache=share_nfs_cache,
        label=label,
    ).table


def compare_strategies(
    jobs: Sequence[Job],
    cpu_counts: Sequence[int],
    strategies: Sequence[str] = STRATEGY_NAMES,
    scheduler_factory: Callable[[], Scheduler] | None = None,
    comm_factory: Callable[[], CommunicationModel] | None = None,
    share_nfs_cache: bool = True,
) -> dict[str, SpeedupTable]:
    """Run the CPU-count sweep for several transmission strategies.

    This reproduces the full layout of Tables II and III (one Time and one
    Speedup-ratio column per strategy).  Each strategy gets its own
    communication model (hence its own NFS cache history), mirroring the
    paper where the three columns come from separate experiment campaigns.

    .. deprecated:: 1.0
        Thin shim over :meth:`repro.api.session.ValuationSession.compare`.
    """
    from repro.api.session import ValuationSession

    session = ValuationSession(
        backend="simulated", scheduler=scheduler_factory, comm_factory=comm_factory
    )
    return session.compare(
        jobs,
        cpu_counts,
        strategies=strategies,
        share_nfs_cache=share_nfs_cache,
    ).tables
