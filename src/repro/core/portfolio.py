"""Portfolios of pricing problems and the paper's three benchmark workloads.

A *portfolio* is an ordered collection of :class:`Position` objects, each
wrapping a fully specified :class:`~repro.pricing.engine.PricingProblem`
(plus a quantity and a category tag).  A portfolio can be

* written to disk as one problem file per position
  (:meth:`Portfolio.to_store`), which is how the paper represents a
  portfolio ("a portfolio will be a collection of files, each file describing
  a precise pricing problem");
* turned into a list of scheduler :class:`~repro.cluster.backends.base.Job`
  objects (:meth:`Portfolio.build_jobs`), with per-job compute costs from a
  :class:`~repro.cluster.costmodel.CostModel` and message sizes from the
  serialized problem size.

Three builders reproduce the paper's workloads:

* :func:`build_toy_portfolio` -- Table II: 10,000 closed-form vanilla options;
* :func:`build_realistic_portfolio` -- Table III: the 7,931-claim equity
  portfolio of Section 4.3 (vanilla, barrier PDE, 40-d basket Monte-Carlo,
  local-volatility Monte-Carlo, American PDE, 7-d American basket
  Longstaff-Schwartz);
* :func:`build_regression_portfolio` -- Table I: one instance of every
  registered (model, option, method) combination, i.e. Premia's
  non-regression tests (see also :mod:`repro.core.regression`).

Each builder accepts a ``scale`` factor that shrinks the position counts
proportionally (used by tests and the real-execution examples, which cannot
afford 7,931 Monte-Carlo pricings), and a ``profile`` switching method
parameters between the paper's heavy settings and fast settings suitable for
actual execution on a laptop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.cluster.backends.base import Job
from repro.cluster.costmodel import CostModel, paper_cost_model
from repro.errors import PortfolioError
from repro.pricing.engine import PricingProblem
from repro.pricing.models.multi_asset import flat_correlation
from repro.serial import ProblemStore, serialize

__all__ = [
    "Position",
    "Portfolio",
    "build_toy_portfolio",
    "build_realistic_portfolio",
    "build_regression_portfolio",
    "PORTFOLIO_BUILDERS",
]


@dataclass
class Position:
    """One contingent claim held in the portfolio."""

    problem: PricingProblem
    quantity: float = 1.0
    category: str = "generic"
    label: str = ""

    def __post_init__(self) -> None:
        if not self.problem.is_complete:
            raise PortfolioError(
                f"position {self.label or self.category} has an incomplete pricing problem"
            )


class Portfolio:
    """An ordered collection of positions."""

    def __init__(self, name: str = "portfolio", positions: Iterable[Position] | None = None):
        self.name = name
        self._positions: list[Position] = list(positions or [])

    # -- container protocol --------------------------------------------------------
    def add(self, position: Position) -> None:
        self._positions.append(position)

    def extend(self, positions: Iterable[Position]) -> None:
        self._positions.extend(positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[Position]:
        return iter(self._positions)

    def __getitem__(self, index: int) -> Position:
        return self._positions[index]

    @property
    def positions(self) -> list[Position]:
        return list(self._positions)

    # -- summaries -----------------------------------------------------------------
    def categories(self) -> list[str]:
        """Distinct category tags, in first-appearance order."""
        seen: dict[str, None] = {}
        for position in self._positions:
            seen.setdefault(position.category, None)
        return list(seen)

    def count_by_category(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for position in self._positions:
            counts[position.category] = counts.get(position.category, 0) + 1
        return counts

    def summary(self, cost_model: CostModel | None = None) -> dict[str, dict[str, float]]:
        """Per-category position counts and (optionally) estimated costs."""
        out: dict[str, dict[str, float]] = {}
        for position in self._positions:
            entry = out.setdefault(
                position.category, {"count": 0, "estimated_cost": 0.0}
            )
            entry["count"] += 1
            if cost_model is not None:
                entry["estimated_cost"] += cost_model.estimate(position.problem)
        return out

    def total_estimated_cost(self, cost_model: CostModel | None = None) -> float:
        """Total single-worker compute time estimate (seconds)."""
        model = cost_model or paper_cost_model()
        return sum(model.estimate(position.problem) for position in self._positions)

    def subset(self, max_positions: int) -> "Portfolio":
        """First ``max_positions`` positions (stratified by insertion order)."""
        return Portfolio(name=f"{self.name}[:{max_positions}]",
                         positions=self._positions[:max_positions])

    # -- persistence -----------------------------------------------------------------
    def to_store(self, directory: str | Path, compress: bool = False) -> ProblemStore:
        """Write one problem file per position and return the store."""
        store = ProblemStore(directory, prefix=f"{self.name}_")
        store.write_all((position.problem for position in self._positions), compress=compress)
        return store

    @classmethod
    def from_store(cls, store: ProblemStore, name: str = "portfolio") -> "Portfolio":
        """Rebuild a portfolio (with unit quantities) from a problem store."""
        positions = []
        for path in store.paths():
            problem = store_load(path)
            positions.append(
                Position(problem=problem, category=problem.label or "generic",
                         label=str(path.name))
            )
        return cls(name=name, positions=positions)

    # -- scheduler jobs -----------------------------------------------------------------
    def build_jobs(
        self,
        cost_model: CostModel | None = None,
        store: ProblemStore | None = None,
        attach_problems: bool = False,
        virtual_prefix: str = "/virtual/portfolio",
    ) -> list[Job]:
        """Turn the portfolio into scheduler jobs.

        Parameters
        ----------
        cost_model:
            Cost model used for the per-job compute cost (default:
            :func:`repro.cluster.costmodel.paper_cost_model`).
        store:
            When given, jobs point at the real problem files of the store
            (required by executing backends with the NFS strategy).  When
            omitted, jobs carry virtual paths and the file size of the
            serialized problem (simulation-only runs, no disk I/O).
        attach_problems:
            Attach the in-memory problem to each job (needed by executing
            backends when no store is used).
        """
        model = cost_model or paper_cost_model()
        jobs: list[Job] = []
        paths = store.paths() if store is not None else None
        if paths is not None and len(paths) != len(self._positions):
            raise PortfolioError(
                f"store has {len(paths)} files but the portfolio has "
                f"{len(self._positions)} positions"
            )
        for index, position in enumerate(self._positions):
            if paths is not None:
                path = str(paths[index])
                file_size = paths[index].stat().st_size
            else:
                path = f"{virtual_prefix}/{self.name}_{index:06d}.pb"
                file_size = serialize(position.problem).nbytes + 4
            jobs.append(
                Job(
                    job_id=index,
                    path=path,
                    file_size=int(file_size),
                    compute_cost=model.estimate(position.problem),
                    category=position.category,
                    problem=position.problem if attach_problems else None,
                )
            )
        return jobs


def store_load(path: Path) -> PricingProblem:
    """Load one problem file (thin wrapper kept separate for monkeypatching)."""
    from repro.serial import load

    problem = load(path)
    if not isinstance(problem, PricingProblem):
        raise PortfolioError(f"file {path} does not contain a PricingProblem")
    return problem


# ---------------------------------------------------------------------------
# workload builders
# ---------------------------------------------------------------------------


def _scaled(count: int, scale: float) -> int:
    """Scale a position count, keeping at least one position."""
    return max(1, int(round(count * scale)))


def _maturity_strike_grid(
    maturities: np.ndarray, strike_fractions: np.ndarray, spot: float
) -> list[tuple[float, float]]:
    """Cartesian (maturity, strike) grid in the paper's enumeration order."""
    return [
        (float(maturity), float(spot * fraction))
        for maturity in maturities
        for fraction in strike_fractions
    ]


def build_toy_portfolio(
    n_options: int = 10_000,
    spot: float = 100.0,
    rate: float = 0.045,
    volatility: float = 0.22,
    dividend: float = 0.0,
    name: str = "toy",
) -> Portfolio:
    """The Table II workload: vanilla options priced by closed-form formulas.

    "we considered a portfolio of 10,000 vanilla options which can be priced
    using closed-form formula.  A single price computation is then very fast
    and the time spent in communication is easily highlighted."

    Strikes cycle over 70%-130% of the spot and maturities over a quarterly
    grid so that the problems are all distinct (distinct problem files).
    Calls and puts alternate.
    """
    if n_options < 1:
        raise PortfolioError("the toy portfolio needs at least one option")
    strike_fractions = np.arange(0.70, 1.3001, 0.01)
    maturities = 1.0 / 3.0 + 0.25 * np.arange(32)
    portfolio = Portfolio(name=name)
    for index in range(n_options):
        strike = spot * strike_fractions[index % len(strike_fractions)]
        maturity = maturities[(index // len(strike_fractions)) % len(maturities)]
        is_call = index % 2 == 0
        problem = PricingProblem(label=f"toy_vanilla_{index}")
        problem.set_asset("equity")
        problem.set_model(
            "BlackScholes1D", spot=spot, rate=rate, volatility=volatility, dividend=dividend
        )
        if is_call:
            problem.set_option("CallEuro", strike=strike, maturity=maturity)
            problem.set_method("CF_Call")
        else:
            problem.set_option("PutEuro", strike=strike, maturity=maturity)
            problem.set_method("CF_Put")
        portfolio.add(Position(problem=problem, category="vanilla_cf",
                               label=problem.label))
    return portfolio


def build_realistic_portfolio(
    spot: float = 100.0,
    rate: float = 0.045,
    volatility: float = 0.25,
    dividend: float = 0.0,
    barrier_fraction: float = 0.85,
    correlation: float = 0.3,
    scale: float = 1.0,
    profile: str = "paper",
    seed: int = 12345,
    name: str = "realistic",
) -> Portfolio:
    """The Table III workload: the 7,931-claim equity portfolio of Section 4.3.

    Composition (at ``scale=1.0``):

    ==========================================  =====  ==========================
    slice                                        count  method
    ==========================================  =====  ==========================
    plain vanilla calls                           1952  closed form
    down-and-out calls                            1952  PDE (2-day time steps)
    40-dimensional basket puts                     525  Monte-Carlo (10^6 paths)
    local-volatility calls                        1025  Monte-Carlo
    American puts                                 1952  PDE with early exercise
    7-dimensional American basket puts             525  Longstaff-Schwartz
    ==========================================  =====  ==========================

    ``profile="paper"`` uses the paper's heavy method parameters (10^6
    Monte-Carlo samples, one PDE time step every two days) -- intended for the
    *simulated* cluster; ``profile="fast"`` shrinks them so the problems can
    actually be executed by the real backends in tests and examples.
    ``scale`` shrinks every slice proportionally (grids are sub-sampled, the
    slice structure is preserved).
    """
    if profile not in ("paper", "fast"):
        raise PortfolioError("profile must be 'paper' or 'fast'")
    if not 0.0 < scale <= 1.0:
        raise PortfolioError("scale must be in (0, 1]")
    heavy = profile == "paper"
    rng = np.random.default_rng(seed)
    portfolio = Portfolio(name=name)

    vanilla_maturities = 1.0 / 3.0 + 0.25 * np.arange(32)
    vanilla_strikes = np.arange(0.70, 1.3001, 0.01)
    basket_maturities = 0.2 * np.arange(1, 26)
    basket_strikes = np.arange(0.90, 1.1001, 0.01)
    localvol_strikes = np.arange(0.80, 1.2001, 0.01)

    def make_model_bs() -> dict:
        return {"spot": spot, "rate": rate, "volatility": volatility, "dividend": dividend}

    # -- slice 1: 1952 plain vanilla calls (closed form) --------------------------
    grid = _maturity_strike_grid(vanilla_maturities, vanilla_strikes, spot)
    for maturity, strike in _subsample(grid, _scaled(1952, scale)):
        problem = PricingProblem(label=f"vanilla_call_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", **make_model_bs())
        problem.set_option("CallEuro", strike=strike, maturity=maturity)
        problem.set_method("CF_Call")
        portfolio.add(Position(problem=problem, category="vanilla_cf", label=problem.label))

    # -- slice 2: 1952 down-and-out calls (PDE, one time step every 2 days) --------
    for maturity, strike in _subsample(grid, _scaled(1952, scale)):
        n_time = max(16, int(math.ceil(maturity * 126))) if heavy else 32
        n_space = 500 if heavy else 120
        problem = PricingProblem(label=f"barrier_doc_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", **make_model_bs())
        problem.set_option(
            "CallDownOutEuro",
            strike=strike,
            maturity=maturity,
            barrier=spot * barrier_fraction,
            rebate=0.0,
        )
        problem.set_method("FD_Barrier", n_space=n_space, n_time=n_time)
        portfolio.add(Position(problem=problem, category="barrier_pde", label=problem.label))

    # -- slice 3: 525 puts on a 40-dimensional basket (Monte-Carlo) ----------------
    basket_grid = _maturity_strike_grid(basket_maturities, basket_strikes, spot)
    dim40 = 40
    weights40 = [1.0 / dim40] * dim40
    vols40 = (0.15 + 0.15 * rng.random(dim40)).tolist()
    corr40 = flat_correlation(dim40, correlation).tolist()
    spots40 = [spot] * dim40
    for maturity, strike in _subsample(basket_grid, _scaled(525, scale)):
        n_paths = 1_000_000 if heavy else 4_000
        problem = PricingProblem(label=f"basket40_put_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model(
            "BlackScholesND",
            spot=spots40,
            rate=rate,
            volatilities=vols40,
            correlation=corr40,
            dividends=0.0,
        )
        problem.set_option("BasketPutEuro", strike=strike, maturity=maturity, weights=weights40)
        problem.set_method(
            "MC_European", n_paths=n_paths, n_steps=1, antithetic=True, control_variate=True
        )
        portfolio.add(Position(problem=problem, category="basket_mc", label=problem.label))

    # -- slice 4: 1025 calls in a local volatility model (Monte-Carlo) --------------
    lv_grid = _maturity_strike_grid(basket_maturities, localvol_strikes, spot)
    for maturity, strike in _subsample(lv_grid, _scaled(1025, scale)):
        n_paths = 1_000_000 if heavy else 5_000
        n_steps = max(12, int(math.ceil(12 * maturity))) if heavy else 12
        problem = PricingProblem(label=f"localvol_call_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model(
            "LocalVolSmile1D",
            spot=spot,
            rate=rate,
            base_volatility=volatility,
            skew=0.3,
            term=0.1,
            dividend=dividend,
        )
        problem.set_option("CallEuro", strike=strike, maturity=maturity)
        problem.set_method(
            "MC_European",
            n_paths=n_paths,
            n_steps=n_steps,
            antithetic=True,
            control_variate=True,
        )
        portfolio.add(Position(problem=problem, category="localvol_mc", label=problem.label))

    # -- slice 5: 1952 American puts (PDE) --------------------------------------------
    for maturity, strike in _subsample(grid, _scaled(1952, scale)):
        n_time = max(16, int(math.ceil(maturity * 126))) if heavy else 32
        n_space = 500 if heavy else 120
        problem = PricingProblem(label=f"american_put_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", **make_model_bs())
        problem.set_option("PutAmer", strike=strike, maturity=maturity)
        problem.set_method("FD_American", n_space=n_space, n_time=n_time)
        portfolio.add(Position(problem=problem, category="american_pde", label=problem.label))

    # -- slice 6: 525 American puts on a 7-dimensional basket (Longstaff-Schwartz) ----
    dim7 = 7
    weights7 = [1.0 / dim7] * dim7
    vols7 = (0.18 + 0.12 * rng.random(dim7)).tolist()
    corr7 = flat_correlation(dim7, correlation).tolist()
    spots7 = [spot] * dim7
    for maturity, strike in _subsample(basket_grid, _scaled(525, scale)):
        n_paths = 100_000 if heavy else 2_000
        n_steps = max(10, int(math.ceil(50 * maturity))) if heavy else 10
        problem = PricingProblem(label=f"american_basket7_put_T{maturity:.2f}_K{strike:.1f}")
        problem.set_asset("equity")
        problem.set_model(
            "BlackScholesND",
            spot=spots7,
            rate=rate,
            volatilities=vols7,
            correlation=corr7,
            dividends=0.0,
        )
        problem.set_option("BasketPutAmer", strike=strike, maturity=maturity, weights=weights7)
        problem.set_method(
            "MC_AM_LongstaffSchwartz",
            n_paths=n_paths,
            n_steps=n_steps,
            basis_degree=3,
            antithetic=True,
        )
        portfolio.add(
            Position(problem=problem, category="american_basket_ls", label=problem.label)
        )

    return portfolio


def _subsample(grid: list[tuple[float, float]], count: int) -> list[tuple[float, float]]:
    """Pick ``count`` evenly spaced entries of the grid (all of it when
    ``count`` >= len(grid)), preserving order."""
    if count >= len(grid):
        return list(grid)
    indices = np.linspace(0, len(grid) - 1, count).round().astype(int)
    return [grid[i] for i in indices]


def build_regression_portfolio(profile: str = "paper", name: str = "regression") -> Portfolio:
    """The Table I workload: Premia's non-regression tests.

    "These non-regression tests consist in a single instance of any pricing
    problem which can be solved using Premia -- a pricing problem corresponds
    to the choice of a model for the underlying asset, a financial product and
    a pricing method."

    The builder enumerates every compatible (model, option, method)
    combination registered in the pricing engine, with one representative
    parameter set per combination.  ``profile="paper"`` uses the heavy
    regression parameters (the suite totals on the order of 10^2-10^3 seconds
    of single-node work, with the longest individual test tens of seconds, as
    in Table I); ``profile="fast"`` uses small parameters so the whole suite
    can actually run in seconds inside the test-suite.
    """
    from repro.core.regression import generate_regression_problems

    portfolio = Portfolio(name=name)
    for problem, category in generate_regression_problems(profile=profile):
        portfolio.add(Position(problem=problem, category=category, label=problem.label))
    return portfolio


#: named builders, used by the command line interface and the benchmarks
PORTFOLIO_BUILDERS: dict[str, Callable[..., Portfolio]] = {
    "toy": build_toy_portfolio,
    "realistic": build_realistic_portfolio,
    "regression": build_regression_portfolio,
}
