"""Portfolio risk measures: present value, Greeks, sensitivity sweeps, VaR.

The motivation of the paper is daily risk evaluation: "it is necessary to
price the contingent claims for various values of these model parameters to
measure their sensibilities to the parameters.  As a consequence, a huge
number of atomic computations (around 10^6) is necessary to evaluate the risk
of the whole portfolio."  This module provides the post-treatment layer that
turns the per-position prices produced by the benchmark runs into
portfolio-level risk numbers:

* :func:`portfolio_value` -- present value of the portfolio;
* :func:`portfolio_greeks` -- aggregated delta / gamma / vega / rho / theta;
* :func:`sensitivity_sweep` -- revalue the portfolio on a grid of bumped
  model parameters (the "various values of these model parameters");
* :func:`scenario_jobs` -- expand a portfolio x scenarios into the flat job
  list that the cluster values (this is what multiplies a few thousand
  claims into ~10^6 atomic computations);
* :func:`historical_var` -- one-day value-at-risk from historical spot
  returns, revaluing the portfolio under each historical shock.

Each measure has two engines.  ``engine="batched"`` (default) expands the
(portfolio x scenarios) grid through :mod:`repro.pricing.scenarios` and
prices it as one stacked-kernel campaign: every bumped cell of a position
joins its base's draw cohort, so a Greek ladder or a thousand-scenario VaR
campaign costs a couple of simulations instead of one per cell, with common
random numbers by construction.  ``engine="serial"`` is the original
position-by-position bump-and-revalue loop, kept as the differential oracle
(base prices agree with ``==``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.portfolio import Portfolio, Position
from repro.errors import PortfolioError
from repro.pricing.engine import PricingProblem
from repro.pricing.greeks import GreekReport, bump_model, compute_greeks

__all__ = [
    "PositionRisk",
    "PortfolioRiskReport",
    "portfolio_value",
    "portfolio_greeks",
    "sensitivity_sweep",
    "scenario_jobs",
    "historical_var",
]


@dataclass
class PositionRisk:
    """Risk numbers of one position (scaled by its quantity)."""

    label: str
    category: str
    quantity: float
    price: float
    delta: float | None = None
    gamma: float | None = None
    vega: float | None = None
    rho: float | None = None
    theta: float | None = None

    @property
    def value(self) -> float:
        return self.quantity * self.price


@dataclass
class PortfolioRiskReport:
    """Aggregated portfolio risk."""

    total_value: float
    total_delta: float
    total_gamma: float
    total_vega: float
    total_rho: float
    total_theta: float = 0.0
    positions: list[PositionRisk] = field(default_factory=list)
    by_category: dict[str, float] = field(default_factory=dict)


def _price_position(position: Position) -> float:
    problem = position.problem
    if problem.has_result:
        return float(problem.get_method_results().price)
    return float(problem.compute().price)


def portfolio_value(
    portfolio: Portfolio, prices: dict[int, float] | None = None
) -> float:
    """Present value ``sum_i quantity_i * price_i``.

    ``prices`` may carry prices already computed by a cluster run (job id ->
    price, job ids being position indices); positions without a supplied
    price are priced locally.
    """
    total = 0.0
    for index, position in enumerate(portfolio):
        if prices is not None and index in prices:
            price = prices[index]
        else:
            price = _price_position(position)
        total += position.quantity * price
    return total


def _truncated(portfolio: Portfolio, max_positions: int | None) -> list[Position]:
    positions = portfolio.positions
    if max_positions is not None:
        positions = positions[:max_positions]
    return positions


def _aggregate_greeks(
    pairs: Sequence[tuple[Position, GreekReport]],
) -> PortfolioRiskReport:
    """Fold per-position Greek reports into one portfolio report."""
    rows: list[PositionRisk] = []
    by_category: dict[str, float] = {}
    totals = {"value": 0.0, "delta": 0.0, "gamma": 0.0, "vega": 0.0,
              "rho": 0.0, "theta": 0.0}
    for position, report in pairs:
        row = PositionRisk(
            label=position.label,
            category=position.category,
            quantity=position.quantity,
            price=report.price,
            delta=report.delta,
            gamma=report.gamma,
            vega=report.vega,
            rho=report.rho,
            theta=report.theta,
        )
        rows.append(row)
        totals["value"] += row.value
        totals["delta"] += position.quantity * (report.delta or 0.0)
        totals["gamma"] += position.quantity * (report.gamma or 0.0)
        totals["vega"] += position.quantity * (report.vega or 0.0)
        totals["rho"] += position.quantity * (report.rho or 0.0)
        totals["theta"] += position.quantity * (report.theta or 0.0)
        by_category[position.category] = by_category.get(position.category, 0.0) + row.value
    return PortfolioRiskReport(
        total_value=totals["value"],
        total_delta=totals["delta"],
        total_gamma=totals["gamma"],
        total_vega=totals["vega"],
        total_rho=totals["rho"],
        total_theta=totals["theta"],
        positions=rows,
        by_category=by_category,
    )


def portfolio_greeks(
    portfolio: Portfolio,
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    max_positions: int | None = None,
    *,
    rate_bump: float = 0.0001,
    theta_bump: float = 1.0 / 365.0,
    engine: str = "batched",
    kernel: str = "stacked",
) -> PortfolioRiskReport:
    """Bump-and-revalue Greeks aggregated over the portfolio.

    ``engine="batched"`` expands the whole book against one
    :func:`~repro.pricing.scenarios.greek_ladder` and prices it as a single
    scenario campaign: all bumped cells of the stackable positions share
    their base's draw cohort, so a 50-position single-model ladder costs two
    simulations instead of ~500 serial repricings.  Positions whose model
    has no volatility-like parameter simply report ``vega=None`` (their
    cells are skipped), matching the serial behaviour.

    ``max_positions`` truncates the portfolio (useful for smoke tests on the
    realistic portfolio, where full Greeks would require ~10x the pricing
    work of a plain valuation).
    """
    positions = _truncated(portfolio, max_positions)
    if not positions:
        raise PortfolioError("cannot compute Greeks of an empty portfolio")

    if engine == "batched":
        from repro.pricing.scenarios import (
            VOL_PARAM,
            greek_ladder,
            greeks_from_prices,
            price_scenarios,
        )

        ladder = greek_ladder(
            spot_bump=spot_bump, vol_bump=vol_bump, rate_bump=rate_bump,
            theta_bump=theta_bump, vol_param=VOL_PARAM,
        )
        problems = [position.problem for position in positions]
        grids = price_scenarios(
            problems, ladder, kernel=kernel, on_missing="skip"
        )
        pairs = [
            (
                position,
                greeks_from_prices(
                    position.problem.model, position.problem.product, prices,
                    spot_bump=spot_bump, vol_bump=vol_bump,
                    rate_bump=rate_bump, theta_bump=theta_bump,
                ),
            )
            for position, prices in zip(positions, grids)
        ]
        return _aggregate_greeks(pairs)

    pairs = []
    for position in positions:
        problem = position.problem
        report: GreekReport = compute_greeks(
            problem.model, problem.product, problem.method,
            spot_bump=spot_bump, vol_bump=vol_bump, rate_bump=rate_bump,
            theta_bump=theta_bump, engine="serial",
        )
        pairs.append((position, report))
    return _aggregate_greeks(pairs)


def _bumped_problem(problem: PricingProblem, param: str, bump: float, relative: bool) -> PricingProblem:
    """Copy a problem with one bumped model parameter."""
    bumped_model = bump_model(problem.model, param, bump, relative=relative)
    clone = PricingProblem(label=problem.label)
    clone.set_asset(problem.asset)
    clone.set_model(bumped_model)
    clone.set_option(problem.product)
    clone.set_method(problem.method)
    return clone


def sensitivity_sweep(
    portfolio: Portfolio,
    param: str,
    bumps: Sequence[float],
    relative: bool = True,
    max_positions: int | None = None,
    value_function: Callable[[Portfolio], float] | None = None,
    *,
    engine: str = "batched",
    kernel: str = "stacked",
) -> dict[float, float]:
    """Portfolio value as a function of a bumped model parameter.

    Positions whose model does not expose ``param`` are kept unbumped (their
    value still enters the total), so the sweep is well defined on mixed
    portfolios.  The batched engine prices the whole (positions x bumps)
    grid as one stacked campaign; passing ``value_function`` forces the
    serial per-scenario loop, since an arbitrary valuer cannot be expressed
    as batched cell prices.
    """
    positions = _truncated(portfolio, max_positions)

    if engine == "batched" and value_function is None and positions:
        from repro.pricing.scenarios import price_scenarios, shock_scenarios

        scenarios = shock_scenarios(bumps, param=param, relative=relative)
        if not scenarios:
            return {}
        problems = [position.problem for position in positions]
        grids = price_scenarios(
            problems, scenarios, kernel=kernel, on_missing="base"
        )
        out: dict[float, float] = {}
        for scenario, bump in zip(scenarios, bumps):
            out[float(bump)] = sum(
                position.quantity * grid[scenario.name]
                for position, grid in zip(positions, grids)
            )
        return out

    valuer = value_function or portfolio_value
    out = {}
    for bump in bumps:
        bumped_positions = []
        for position in positions:
            try:
                bumped = _bumped_problem(position.problem, param, bump, relative)
            except Exception:
                bumped = position.problem
            bumped_positions.append(
                Position(
                    problem=bumped,
                    quantity=position.quantity,
                    category=position.category,
                    label=position.label,
                )
            )
        out[float(bump)] = valuer(Portfolio(name=f"{portfolio.name}_bump", positions=bumped_positions))
    return out


def scenario_jobs(
    portfolio: Portfolio,
    param: str,
    bumps: Sequence[float],
    relative: bool = True,
    max_positions: int | None = None,
) -> list[PricingProblem]:
    """Expand a portfolio into one pricing problem per (position, scenario).

    This is the workload multiplication the paper's introduction describes: a
    portfolio of a few thousand claims times a few hundred parameter
    scenarios yields the ~10^6 atomic computations of a full risk run.  The
    returned problems can be wrapped into a :class:`Portfolio` and fed to the
    cluster runner like any other workload.
    """
    positions = _truncated(portfolio, max_positions)
    problems: list[PricingProblem] = []
    for position in positions:
        for bump in bumps:
            try:
                clone = _bumped_problem(position.problem, param, bump, relative)
            # repro-lint: disable=except-swallow -- a position whose model lacks the bumped parameter is skipped by design; the sensitivity grid stays dense for the rest
            except Exception:
                continue
            clone.label = f"{position.label}|{param}{bump:+g}"
            problems.append(clone)
    return problems


def historical_var(
    portfolio: Portfolio,
    spot_returns: Sequence[float],
    confidence: float = 0.99,
    max_positions: int | None = None,
    *,
    engine: str = "batched",
    kernel: str = "stacked",
) -> dict[str, Any]:
    """One-day historical value-at-risk of the portfolio.

    Each historical return ``r`` defines a scenario in which every underlying
    spot is shocked by ``(1 + r)``; the portfolio is revalued under each
    scenario and the VaR is the ``confidence``-quantile of the loss
    distribution relative to the base value.

    The batched engine prices base and all shocked states as **one**
    scenario campaign: spot shocks leave the time grid and method untouched,
    so a thousand historical scenarios of a stackable book share a single
    draw cohort instead of a thousand portfolio revaluations.
    """
    if not 0.5 < confidence < 1.0:
        raise PortfolioError("confidence must lie in (0.5, 1)")
    returns = np.asarray(list(spot_returns), dtype=float)
    if returns.size == 0:
        raise PortfolioError("need at least one historical return")
    positions = _truncated(portfolio, max_positions)

    if engine == "batched" and positions:
        from repro.pricing.scenarios import historical_scenarios, price_scenarios

        scenarios = historical_scenarios(returns.tolist())
        problems = [position.problem for position in positions]
        grids = price_scenarios(
            problems, scenarios, kernel=kernel, on_missing="base"
        )
        base_value = sum(
            position.quantity * grid["base"]
            for position, grid in zip(positions, grids)
        )
        scenario_values = np.asarray([
            sum(
                position.quantity * grid[scenario.name]
                for position, grid in zip(positions, grids)
            )
            for scenario in scenarios[1:]
        ])
    else:
        base_portfolio = Portfolio(name=f"{portfolio.name}_base", positions=positions)
        base_value = portfolio_value(base_portfolio)

        values = []
        for shock in returns:
            shocked_positions = []
            for position in positions:
                try:
                    bumped = _bumped_problem(position.problem, "spot", float(shock), relative=True)
                except Exception:
                    bumped = position.problem
                shocked_positions.append(
                    Position(problem=bumped, quantity=position.quantity,
                             category=position.category, label=position.label)
                )
            values.append(
                portfolio_value(Portfolio(name="scenario", positions=shocked_positions))
            )
        scenario_values = np.asarray(values)

    return _var_summary(float(base_value), scenario_values, confidence)


def _var_summary(
    base_value: float, scenario_values: np.ndarray, confidence: float
) -> dict[str, Any]:
    """Loss-distribution summary shared by the engines (and the session API)."""
    losses = base_value - scenario_values
    var = float(np.quantile(losses, confidence))
    expected_shortfall = float(losses[losses >= var].mean()) if np.any(losses >= var) else var
    return {
        "base_value": float(base_value),
        "var": var,
        "expected_shortfall": expected_shortfall,
        "confidence": confidence,
        "n_scenarios": int(scenario_values.size),
        "worst_loss": float(losses.max()),
        "scenario_values": scenario_values.tolist(),
    }
