"""Portfolio risk measures: present value, Greeks, sensitivity sweeps, VaR.

The motivation of the paper is daily risk evaluation: "it is necessary to
price the contingent claims for various values of these model parameters to
measure their sensibilities to the parameters.  As a consequence, a huge
number of atomic computations (around 10^6) is necessary to evaluate the risk
of the whole portfolio."  This module provides the post-treatment layer that
turns the per-position prices produced by the benchmark runs into
portfolio-level risk numbers:

* :func:`portfolio_value` -- present value of the portfolio;
* :func:`portfolio_greeks` -- aggregated delta / gamma / vega / rho;
* :func:`sensitivity_sweep` -- revalue the portfolio on a grid of bumped
  model parameters (the "various values of these model parameters");
* :func:`scenario_jobs` -- expand a portfolio x scenarios into the flat job
  list that the cluster values (this is what multiplies a few thousand
  claims into ~10^6 atomic computations);
* :func:`historical_var` -- one-day value-at-risk from historical spot
  returns, revaluing the portfolio under each historical shock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.portfolio import Portfolio, Position
from repro.errors import PortfolioError
from repro.pricing.engine import PricingProblem
from repro.pricing.greeks import GreekReport, bump_model, compute_greeks

__all__ = [
    "PositionRisk",
    "PortfolioRiskReport",
    "portfolio_value",
    "portfolio_greeks",
    "sensitivity_sweep",
    "scenario_jobs",
    "historical_var",
]


@dataclass
class PositionRisk:
    """Risk numbers of one position (scaled by its quantity)."""

    label: str
    category: str
    quantity: float
    price: float
    delta: float | None = None
    gamma: float | None = None
    vega: float | None = None
    rho: float | None = None

    @property
    def value(self) -> float:
        return self.quantity * self.price


@dataclass
class PortfolioRiskReport:
    """Aggregated portfolio risk."""

    total_value: float
    total_delta: float
    total_gamma: float
    total_vega: float
    total_rho: float
    positions: list[PositionRisk] = field(default_factory=list)
    by_category: dict[str, float] = field(default_factory=dict)


def _price_position(position: Position) -> float:
    problem = position.problem
    if problem.has_result:
        return float(problem.get_method_results().price)
    return float(problem.compute().price)


def portfolio_value(
    portfolio: Portfolio, prices: dict[int, float] | None = None
) -> float:
    """Present value ``sum_i quantity_i * price_i``.

    ``prices`` may carry prices already computed by a cluster run (job id ->
    price, job ids being position indices); positions without a supplied
    price are priced locally.
    """
    total = 0.0
    for index, position in enumerate(portfolio):
        if prices is not None and index in prices:
            price = prices[index]
        else:
            price = _price_position(position)
        total += position.quantity * price
    return total


def portfolio_greeks(
    portfolio: Portfolio,
    spot_bump: float = 0.01,
    vol_bump: float = 0.01,
    max_positions: int | None = None,
) -> PortfolioRiskReport:
    """Bump-and-revalue Greeks aggregated over the portfolio.

    ``max_positions`` truncates the portfolio (useful for smoke tests on the
    realistic portfolio, where full Greeks would require ~5x the pricing
    work of a plain valuation).
    """
    positions = portfolio.positions
    if max_positions is not None:
        positions = positions[:max_positions]
    if not positions:
        raise PortfolioError("cannot compute Greeks of an empty portfolio")

    rows: list[PositionRisk] = []
    by_category: dict[str, float] = {}
    totals = {"value": 0.0, "delta": 0.0, "gamma": 0.0, "vega": 0.0, "rho": 0.0}
    for position in positions:
        problem = position.problem
        report: GreekReport = compute_greeks(
            problem.model, problem.product, problem.method,
            spot_bump=spot_bump, vol_bump=vol_bump,
        )
        row = PositionRisk(
            label=position.label,
            category=position.category,
            quantity=position.quantity,
            price=report.price,
            delta=report.delta,
            gamma=report.gamma,
            vega=report.vega,
            rho=report.rho,
        )
        rows.append(row)
        totals["value"] += row.value
        totals["delta"] += position.quantity * (report.delta or 0.0)
        totals["gamma"] += position.quantity * (report.gamma or 0.0)
        totals["vega"] += position.quantity * (report.vega or 0.0)
        totals["rho"] += position.quantity * (report.rho or 0.0)
        by_category[position.category] = by_category.get(position.category, 0.0) + row.value

    return PortfolioRiskReport(
        total_value=totals["value"],
        total_delta=totals["delta"],
        total_gamma=totals["gamma"],
        total_vega=totals["vega"],
        total_rho=totals["rho"],
        positions=rows,
        by_category=by_category,
    )


def _bumped_problem(problem: PricingProblem, param: str, bump: float, relative: bool) -> PricingProblem:
    """Copy a problem with one bumped model parameter."""
    bumped_model = bump_model(problem.model, param, bump, relative=relative)
    clone = PricingProblem(label=problem.label)
    clone.set_asset(problem.asset)
    clone.set_model(bumped_model)
    clone.set_option(problem.product)
    clone.set_method(problem.method)
    return clone


def sensitivity_sweep(
    portfolio: Portfolio,
    param: str,
    bumps: Sequence[float],
    relative: bool = True,
    max_positions: int | None = None,
    value_function: Callable[[Portfolio], float] | None = None,
) -> dict[float, float]:
    """Portfolio value as a function of a bumped model parameter.

    Positions whose model does not expose ``param`` are kept unbumped (their
    value still enters the total), so the sweep is well defined on mixed
    portfolios.
    """
    positions = portfolio.positions
    if max_positions is not None:
        positions = positions[:max_positions]
    valuer = value_function or portfolio_value
    out: dict[float, float] = {}
    for bump in bumps:
        bumped_positions = []
        for position in positions:
            try:
                bumped = _bumped_problem(position.problem, param, bump, relative)
            except Exception:
                bumped = position.problem
            bumped_positions.append(
                Position(
                    problem=bumped,
                    quantity=position.quantity,
                    category=position.category,
                    label=position.label,
                )
            )
        out[float(bump)] = valuer(Portfolio(name=f"{portfolio.name}_bump", positions=bumped_positions))
    return out


def scenario_jobs(
    portfolio: Portfolio,
    param: str,
    bumps: Sequence[float],
    relative: bool = True,
    max_positions: int | None = None,
) -> list[PricingProblem]:
    """Expand a portfolio into one pricing problem per (position, scenario).

    This is the workload multiplication the paper's introduction describes: a
    portfolio of a few thousand claims times a few hundred parameter
    scenarios yields the ~10^6 atomic computations of a full risk run.  The
    returned problems can be wrapped into a :class:`Portfolio` and fed to the
    cluster runner like any other workload.
    """
    positions = portfolio.positions
    if max_positions is not None:
        positions = positions[:max_positions]
    problems: list[PricingProblem] = []
    for position in positions:
        for bump in bumps:
            try:
                clone = _bumped_problem(position.problem, param, bump, relative)
            # repro-lint: disable=except-swallow -- a position whose model lacks the bumped parameter is skipped by design; the sensitivity grid stays dense for the rest
            except Exception:
                continue
            clone.label = f"{position.label}|{param}{bump:+g}"
            problems.append(clone)
    return problems


def historical_var(
    portfolio: Portfolio,
    spot_returns: Sequence[float],
    confidence: float = 0.99,
    max_positions: int | None = None,
) -> dict[str, Any]:
    """One-day historical value-at-risk of the portfolio.

    Each historical return ``r`` defines a scenario in which every underlying
    spot is shocked by ``(1 + r)``; the portfolio is revalued under each
    scenario and the VaR is the ``confidence``-quantile of the loss
    distribution relative to the base value.
    """
    if not 0.5 < confidence < 1.0:
        raise PortfolioError("confidence must lie in (0.5, 1)")
    returns = np.asarray(list(spot_returns), dtype=float)
    if returns.size == 0:
        raise PortfolioError("need at least one historical return")
    positions = portfolio.positions
    if max_positions is not None:
        positions = positions[:max_positions]
    base_portfolio = Portfolio(name=f"{portfolio.name}_base", positions=positions)
    base_value = portfolio_value(base_portfolio)

    scenario_values = []
    for shock in returns:
        shocked_positions = []
        for position in positions:
            try:
                bumped = _bumped_problem(position.problem, "spot", float(shock), relative=True)
            except Exception:
                bumped = position.problem
            shocked_positions.append(
                Position(problem=bumped, quantity=position.quantity,
                         category=position.category, label=position.label)
            )
        scenario_values.append(
            portfolio_value(Portfolio(name="scenario", positions=shocked_positions))
        )
    scenario_values = np.asarray(scenario_values)
    losses = base_value - scenario_values
    var = float(np.quantile(losses, confidence))
    expected_shortfall = float(losses[losses >= var].mean()) if np.any(losses >= var) else var
    return {
        "base_value": float(base_value),
        "var": var,
        "expected_shortfall": expected_shortfall,
        "confidence": confidence,
        "n_scenarios": int(returns.size),
        "worst_loss": float(losses.max()),
        "scenario_values": scenario_values.tolist(),
    }
