"""Premia-style non-regression tests (the Table I workload).

"The Premia development team ... uses a bunch of non-regression tests to make
sure that a change in the source code does not alter the behaviour of any
algorithm.  These non-regression tests consist in a single instance of any
pricing problem which can be solved using Premia ... Several sets of these
tests exist with different parameters and are run at least once a day."

This module provides

* :func:`generate_regression_problems` -- one problem per compatible
  (model, option, method) combination registered in the pricing engine, with
  either the paper-scale parameters (``profile="paper"``, used by the
  simulated Table I benchmark) or laptop-scale parameters
  (``profile="fast"``, which the test-suite actually executes);
* :class:`RegressionSuite` -- run the fast suite, store reference values, and
  compare a new run against the stored reference (the actual non-regression
  check).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import PortfolioError
from repro.pricing.engine import PricingProblem, compatible_methods
from repro.pricing.models.multi_asset import flat_correlation

__all__ = [
    "generate_regression_problems",
    "RegressionSuite",
    "RegressionMismatch",
    "REGRESSION_MODEL_SPECS",
    "REGRESSION_PRODUCT_SPECS",
]

# ---------------------------------------------------------------------------
# canonical model / product instances of the regression suite
# ---------------------------------------------------------------------------

#: (registry name, parameters, short tag)
REGRESSION_MODEL_SPECS: list[tuple[str, dict[str, Any], str]] = [
    (
        "BlackScholes1D",
        {"spot": 100.0, "rate": 0.05, "volatility": 0.2, "dividend": 0.0},
        "bs",
    ),
    (
        "CEV1D",
        {"spot": 100.0, "rate": 0.05, "volatility": 0.2, "beta": 0.7, "dividend": 0.0},
        "cev",
    ),
    (
        "LocalVolSmile1D",
        {"spot": 100.0, "rate": 0.05, "base_volatility": 0.2, "skew": 0.3, "term": 0.1},
        "lv",
    ),
    (
        "Heston1D",
        {
            "spot": 100.0,
            "rate": 0.03,
            "v0": 0.04,
            "kappa": 2.0,
            "theta": 0.04,
            "sigma_v": 0.4,
            "rho": -0.7,
        },
        "heston",
    ),
    (
        "MertonJump1D",
        {
            "spot": 100.0,
            "rate": 0.05,
            "volatility": 0.2,
            "jump_intensity": 0.5,
            "jump_mean": -0.1,
            "jump_std": 0.2,
        },
        "merton",
    ),
    (
        "BlackScholesND",
        {
            "spot": [100.0] * 5,
            "rate": 0.05,
            "volatilities": [0.2, 0.22, 0.18, 0.25, 0.21],
            "correlation": flat_correlation(5, 0.4).tolist(),
            "dividends": 0.0,
        },
        "bs5d",
    ),
]

#: (registry name, parameters, short tag)
REGRESSION_PRODUCT_SPECS: list[tuple[str, dict[str, Any], str]] = [
    ("CallEuro", {"strike": 100.0, "maturity": 1.0}, "call"),
    ("PutEuro", {"strike": 100.0, "maturity": 1.0}, "put"),
    ("DigitalCallEuro", {"strike": 100.0, "maturity": 1.0}, "digital_call"),
    ("DigitalPutEuro", {"strike": 100.0, "maturity": 1.0}, "digital_put"),
    (
        "CallDownOutEuro",
        {"strike": 100.0, "maturity": 1.0, "barrier": 85.0, "rebate": 0.0},
        "down_out_call",
    ),
    (
        "PutUpOutEuro",
        {"strike": 100.0, "maturity": 1.0, "barrier": 120.0, "rebate": 0.0},
        "up_out_put",
    ),
    ("AsianCallEuro", {"strike": 100.0, "maturity": 1.0, "n_fixings": 12}, "asian_call"),
    ("AsianPutEuro", {"strike": 100.0, "maturity": 1.0, "n_fixings": 12}, "asian_put"),
    ("CallAmer", {"strike": 100.0, "maturity": 1.0}, "american_call"),
    ("PutAmer", {"strike": 100.0, "maturity": 1.0}, "american_put"),
    ("BasketCallEuro", {"strike": 100.0, "maturity": 1.0, "weights": [0.2] * 5}, "basket_call"),
    ("BasketPutEuro", {"strike": 100.0, "maturity": 1.0, "weights": [0.2] * 5}, "basket_put"),
    ("BasketPutAmer", {"strike": 100.0, "maturity": 1.0, "weights": [0.2] * 5}, "basket_put_amer"),
]


def _method_parameters(method_name: str, profile: str, model_dimension: int) -> dict[str, Any]:
    """Regression parameters for each method family.

    ``"paper"`` yields problems whose estimated cost spans roughly 1-30
    seconds on the reference node (as in Table I, where the suite totals
    ~840 s and the longest test ~30 s); ``"fast"`` yields problems that run
    in milliseconds so the suite can be executed for real in the tests.
    """
    heavy = profile == "paper"
    if method_name in ("CF_Call", "CF_Put", "CF_Digital", "CF_Barrier", "CF_BasketMomentMatch"):
        return {}
    if method_name == "FFT_COS":
        return {"n_terms": 4096 if heavy else 128}
    if method_name in ("TR_CoxRossRubinstein", "TR_Trinomial"):
        return {"n_steps": 5000 if heavy else 100}
    if method_name == "FD_European":
        return {"n_space": 1000 if heavy else 60, "n_time": 2000 if heavy else 40}
    if method_name == "FD_Barrier":
        return {"n_space": 1000 if heavy else 60, "n_time": 2000 if heavy else 40}
    if method_name == "FD_American":
        return {"n_space": 1000 if heavy else 60, "n_time": 2000 if heavy else 40}
    if method_name == "MC_European":
        if heavy:
            # keep multi-asset problems at a comparable cost to 1-d ones
            n_steps = 500 if model_dimension == 1 else 100
            return {"n_paths": 2_000_000, "n_steps": n_steps, "seed": 0}
        return {"n_paths": 2_000, "n_steps": 5, "seed": 0}
    if method_name == "MC_AM_LongstaffSchwartz":
        if heavy:
            return {"n_paths": 500_000, "n_steps": 250, "seed": 0}
        return {"n_paths": 1_000, "n_steps": 10, "seed": 0}
    raise PortfolioError(f"no regression parameters defined for method {method_name!r}")


def generate_regression_problems(
    profile: str = "paper",
) -> Iterator[tuple[PricingProblem, str]]:
    """Yield ``(problem, category)`` for every compatible combination.

    The category string is ``"<model>/<product>/<method>"``, e.g.
    ``"bs/call/MC_European"``.
    """
    if profile not in ("paper", "fast"):
        raise PortfolioError("profile must be 'paper' or 'fast'")
    for model_name, model_params, model_tag in REGRESSION_MODEL_SPECS:
        probe = PricingProblem()
        probe.set_model(model_name, **model_params)
        model = probe.model
        for product_name, product_params, product_tag in REGRESSION_PRODUCT_SPECS:
            # multi-asset products only make sense on the multi-asset model
            try:
                probe.set_option(product_name, **product_params)
            # repro-lint: disable=except-swallow -- defensive skip of product specs the registry cannot build; the regression grid drops the spec rather than aborting the whole sweep
            except Exception:  # pragma: no cover - registry always succeeds
                continue
            product = probe.product
            if product.dimension != model.dimension:
                continue
            for method_name in compatible_methods(model, product):
                params = _method_parameters(method_name, profile, model.dimension)
                problem = PricingProblem(
                    label=f"{model_tag}/{product_tag}/{method_name}"
                )
                problem.set_asset("equity")
                problem.set_model(model_name, **model_params)
                problem.set_option(product_name, **product_params)
                problem.set_method(method_name, **params)
                yield problem, problem.label


# ---------------------------------------------------------------------------
# reference-value management
# ---------------------------------------------------------------------------


@dataclass
class RegressionMismatch:
    """One regression failure: the price moved beyond the tolerance."""

    label: str
    reference: float
    computed: float
    relative_error: float


class RegressionSuite:
    """Run the (fast-profile) regression problems and diff against a reference.

    The reference file is JSON mapping problem labels to prices; it plays the
    role of the expected outputs of Premia's daily non-regression runs.
    """

    def __init__(self, profile: str = "fast"):
        self.profile = profile
        self.problems = [problem for problem, _ in generate_regression_problems(profile)]

    def __len__(self) -> int:
        return len(self.problems)

    def run(self) -> dict[str, float]:
        """Execute every problem and return ``label -> price``."""
        prices: dict[str, float] = {}
        for problem in self.problems:
            result = problem.compute()
            prices[problem.label] = float(result.price)
        return prices

    def generate_reference(self, path: str | Path) -> dict[str, float]:
        """Run the suite and store the prices as the new reference."""
        prices = self.run()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(prices, indent=2, sort_keys=True))
        return prices

    def check_against_reference(
        self, path: str | Path, rtol: float = 1e-9, atol: float = 1e-12
    ) -> list[RegressionMismatch]:
        """Re-run the suite and report entries that moved beyond the tolerance.

        Deterministic methods (closed form, PDE, trees, COS, seeded
        Monte-Carlo) must reproduce the stored values exactly up to floating
        point noise, which is why the default tolerance is tight.
        """
        reference = json.loads(Path(path).read_text())
        current = self.run()
        mismatches: list[RegressionMismatch] = []
        for label, ref_price in reference.items():
            if label not in current:
                mismatches.append(
                    RegressionMismatch(label=label, reference=ref_price, computed=float("nan"),
                                       relative_error=float("inf"))
                )
                continue
            value = current[label]
            scale = max(abs(ref_price), atol)
            rel = abs(value - ref_price) / scale
            if abs(value - ref_price) > atol + rtol * scale:
                mismatches.append(
                    RegressionMismatch(
                        label=label, reference=ref_price, computed=value, relative_error=rel
                    )
                )
        return mismatches
