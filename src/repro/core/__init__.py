"""``repro.core`` -- the risk-management benchmark (the paper's contribution).

Layers on top of :mod:`repro.pricing`, :mod:`repro.serial` and
:mod:`repro.cluster`:

* portfolios and the three benchmark workloads (:mod:`repro.core.portfolio`);
* the three problem-transmission strategies (:mod:`repro.core.strategies`);
* the Robin-Hood scheduler and its extensions (:mod:`repro.core.scheduler`);
* the runner and CPU-count sweeps (:mod:`repro.core.runner`);
* speedup tables in the paper's format (:mod:`repro.core.speedup`);
* the non-regression workload (:mod:`repro.core.regression`);
* portfolio risk measures (:mod:`repro.core.risk`).
"""

from repro.core.paper_reference import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    PAPER_TABLE_III,
    compare_with_paper,
    paper_speedup_table,
)
from repro.core.portfolio import (
    PORTFOLIO_BUILDERS,
    Portfolio,
    Position,
    build_realistic_portfolio,
    build_regression_portfolio,
    build_toy_portfolio,
)
from repro.core.regression import RegressionSuite, generate_regression_problems
from repro.core.risk import (
    PortfolioRiskReport,
    historical_var,
    portfolio_greeks,
    portfolio_value,
    scenario_jobs,
    sensitivity_sweep,
)
from repro.core.runner import (
    RunReport,
    compare_strategies,
    run_jobs,
    run_portfolio,
    sweep_cpu_counts,
)
from repro.core.scheduler import (
    SCHEDULERS,
    ChunkedPolicy,
    ChunkedRobinHoodScheduler,
    DispatchPolicy,
    RobinHoodPolicy,
    RobinHoodScheduler,
    ScheduleOutcome,
    ScheduleStream,
    Scheduler,
    StaticBlockPolicy,
    StaticBlockScheduler,
    WorkStealingPolicy,
    WorkStealingScheduler,
    register_scheduler,
    simulate_hierarchical,
)
from repro.core.speedup import SpeedupRow, SpeedupTable, format_comparison_table, speedup_ratio
from repro.core.strategies import (
    STRATEGIES,
    FullLoadStrategy,
    InMemoryStrategy,
    NFSStrategy,
    SerializedLoadStrategy,
    TransmissionStrategy,
    get_strategy,
)

__all__ = [
    # portfolio
    "Portfolio",
    "Position",
    "build_toy_portfolio",
    "build_realistic_portfolio",
    "build_regression_portfolio",
    "PORTFOLIO_BUILDERS",
    # strategies
    "TransmissionStrategy",
    "FullLoadStrategy",
    "SerializedLoadStrategy",
    "NFSStrategy",
    "InMemoryStrategy",
    "get_strategy",
    "STRATEGIES",
    # schedulers
    "Scheduler",
    "RobinHoodScheduler",
    "StaticBlockScheduler",
    "ChunkedRobinHoodScheduler",
    "WorkStealingScheduler",
    "DispatchPolicy",
    "RobinHoodPolicy",
    "StaticBlockPolicy",
    "ChunkedPolicy",
    "WorkStealingPolicy",
    "ScheduleStream",
    "register_scheduler",
    "simulate_hierarchical",
    "ScheduleOutcome",
    "SCHEDULERS",
    # runner / speedup
    "RunReport",
    "run_jobs",
    "run_portfolio",
    "sweep_cpu_counts",
    "compare_strategies",
    "SpeedupTable",
    "SpeedupRow",
    "speedup_ratio",
    "format_comparison_table",
    # regression / risk
    "RegressionSuite",
    "generate_regression_problems",
    "portfolio_value",
    "portfolio_greeks",
    "sensitivity_sweep",
    "scenario_jobs",
    "historical_var",
    "PortfolioRiskReport",
    # published reference data
    "PAPER_TABLE_I",
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
    "paper_speedup_table",
    "compare_with_paper",
]
