"""Speedup tables in the format of the paper's Tables I-III.

The paper reports, for each CPU count ``n``, the wall-clock time and the
"Speedup ratio ... CPU time for 1 CPU / (n x CPU time for n CPUs)".  With one
CPU dedicated to the master, the effective parallelism is ``n - 1`` workers
and the ratio is normalised so that the 2-CPU row (one worker) equals 1:

``ratio(n) = T(2 CPUs) / ((n - 1) * T(n CPUs))``

which reproduces the numbers of the published tables (e.g. Table I:
``838.004 / (3 * 285.356) = 0.9789`` for 4 CPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import PortfolioError

__all__ = ["SpeedupRow", "SpeedupTable", "speedup_ratio", "format_comparison_table"]


def speedup_ratio(reference_time: float, reference_workers: int, time: float, workers: int) -> float:
    """The paper's speedup ratio, generalised to an arbitrary reference row."""
    if time <= 0 or reference_time <= 0:
        raise PortfolioError("times must be strictly positive")
    if workers < 1 or reference_workers < 1:
        raise PortfolioError("worker counts must be >= 1")
    return (reference_time * reference_workers) / (workers * time)


@dataclass
class SpeedupRow:
    """One line of a speedup table."""

    n_cpus: int
    time: float
    ratio: float

    @property
    def n_workers(self) -> int:
        return self.n_cpus - 1


@dataclass
class SpeedupTable:
    """Times and speedup ratios over a CPU-count sweep, for one strategy."""

    label: str
    rows: list[SpeedupRow] = field(default_factory=list)

    @classmethod
    def from_times(cls, label: str, times: dict[int, float]) -> "SpeedupTable":
        """Build a table from ``{n_cpus: wall_time}`` measurements.

        The smallest CPU count present is the normalisation reference (the
        paper uses 2 CPUs = 1 worker).
        """
        if not times:
            raise PortfolioError("cannot build a speedup table from no measurements")
        items = sorted(times.items())
        ref_cpus, ref_time = items[0]
        if ref_cpus < 2:
            raise PortfolioError("CPU counts must be >= 2 (one master + workers)")
        rows = [
            SpeedupRow(
                n_cpus=n_cpus,
                time=time,
                ratio=speedup_ratio(ref_time, ref_cpus - 1, time, n_cpus - 1),
            )
            for n_cpus, time in items
        ]
        return cls(label=label, rows=rows)

    # -- accessors -------------------------------------------------------------
    def cpu_counts(self) -> list[int]:
        return [row.n_cpus for row in self.rows]

    def times(self) -> dict[int, float]:
        return {row.n_cpus: row.time for row in self.rows}

    def ratios(self) -> dict[int, float]:
        return {row.n_cpus: row.ratio for row in self.rows}

    def row_for(self, n_cpus: int) -> SpeedupRow:
        for row in self.rows:
            if row.n_cpus == n_cpus:
                return row
        raise PortfolioError(f"no row for {n_cpus} CPUs in table {self.label!r}")

    # -- rendering --------------------------------------------------------------
    def format(self) -> str:
        """Plain-text rendering in the layout of the paper's tables."""
        lines = [
            f"Speedup table -- {self.label}",
            f"{'CPUs':>6}  {'Time (s)':>12}  {'Speedup ratio':>14}",
        ]
        for row in self.rows:
            lines.append(f"{row.n_cpus:>6}  {row.time:>12.4f}  {row.ratio:>14.6f}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def format_comparison_table(tables: Iterable[SpeedupTable]) -> str:
    """Render several strategies side by side (the layout of Tables II/III)."""
    tables = list(tables)
    if not tables:
        raise PortfolioError("need at least one speedup table")
    cpu_counts = tables[0].cpu_counts()
    for table in tables[1:]:
        if table.cpu_counts() != cpu_counts:
            raise PortfolioError("all tables must cover the same CPU counts")
    header = f"{'CPUs':>6}"
    for table in tables:
        header += f"  {'Time ' + table.label:>18}  {'Ratio ' + table.label:>18}"
    lines = [header]
    for n_cpus in cpu_counts:
        line = f"{n_cpus:>6}"
        for table in tables:
            row = table.row_for(n_cpus)
            line += f"  {row.time:>18.4f}  {row.ratio:>18.6f}"
        lines.append(line)
    return "\n".join(lines)
