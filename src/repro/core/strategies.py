"""The three problem-transmission strategies of the paper.

Tables II and III compare three ways for the master to hand a pricing problem
to a slave:

* **full load** -- "the master reads the content of the file describing the
  PremiaModel object, then creates the object, serializes it, packs it and
  sends it to a slave";
* **serialized load** -- "creating the serialized object directly from the
  file containing the object rather than first creating the object itself and
  then serializing it" (the ``sload`` function of Fig. 2);
* **NFS** -- "the master ... only send[s] the name of the file to be read and
  let[s] the slave read the file content".

Each strategy implements :meth:`TransmissionStrategy.prepare`, the *real*
master-side work performed before a dispatch on the executing backends
(sequential / multiprocessing).  On the simulated backend the same costs are
modelled by :class:`repro.cluster.simcluster.comm.CommunicationModel`; the
strategy then only contributes its name.
"""

from __future__ import annotations

import abc
import time

from repro.cluster.backends.base import (
    PAYLOAD_PATH,
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    Job,
    PreparedMessage,
)
from repro.errors import SchedulingError
from repro.serial import Serial, serialize, sload

__all__ = [
    "TransmissionStrategy",
    "FullLoadStrategy",
    "SerializedLoadStrategy",
    "NFSStrategy",
    "InMemoryStrategy",
    "get_strategy",
    "STRATEGIES",
]


class TransmissionStrategy(abc.ABC):
    """How the master turns a job into a message for a worker."""

    #: name used by the communication cost model of the simulated cluster
    name: str = "abstract"

    @abc.abstractmethod
    def _prepare(self, job: Job) -> PreparedMessage:
        """Strategy-specific preparation (no timing)."""

    def prepare(self, job: Job) -> PreparedMessage:
        """Prepare the message and record the master-side preparation time."""
        start = time.perf_counter()
        message = self._prepare(job)
        message.prep_elapsed = time.perf_counter() - start
        return message

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FullLoadStrategy(TransmissionStrategy):
    """Read the file, build the object, serialize it again, send the bytes."""

    name = "full_load"

    def _prepare(self, job: Job) -> PreparedMessage:
        if job.path and _is_real_file(job):
            # the deliberately wasteful path of the paper: materialise the
            # object only to serialize it again immediately
            problem = sload(job.path).unserialize()
        elif job.problem is not None:
            problem = job.problem
        else:
            raise SchedulingError(
                f"job {job.job_id} has neither a readable file nor an in-memory problem"
            )
        serial = serialize(problem)
        data = serial.to_bytes()
        return PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data))


class SerializedLoadStrategy(TransmissionStrategy):
    """``sload``: wrap the file bytes directly as a Serial object and send it."""

    name = "serialized_load"

    def _prepare(self, job: Job) -> PreparedMessage:
        if job.path and _is_real_file(job):
            serial = sload(job.path)
        elif job.problem is not None:
            # no file: serializing the in-memory object is the closest
            # equivalent (no wasteful rebuild happens either way)
            serial = serialize(job.problem)
        else:
            raise SchedulingError(
                f"job {job.job_id} has neither a readable file nor an in-memory problem"
            )
        data = serial.to_bytes()
        return PreparedMessage(kind=PAYLOAD_SERIAL, payload=data, nbytes=len(data))


class NFSStrategy(TransmissionStrategy):
    """Send only the file name; the worker reads the shared file system."""

    name = "nfs"

    def _prepare(self, job: Job) -> PreparedMessage:
        if not job.path:
            raise SchedulingError(
                f"the NFS strategy needs a problem file for job {job.job_id}"
            )
        return PreparedMessage(
            kind=PAYLOAD_PATH, payload=job.path, nbytes=len(job.path.encode("utf-8"))
        )


class InMemoryStrategy(TransmissionStrategy):
    """Hand the in-memory problem object to the worker directly.

    Not part of the paper's comparison (it cannot cross process boundaries);
    used by the sequential backend in unit tests where serialization round
    trips would only add noise.
    """

    name = "serialized_load"  # cost-model equivalent

    def _prepare(self, job: Job) -> PreparedMessage:
        if job.problem is None:
            raise SchedulingError(f"job {job.job_id} has no in-memory problem")
        return PreparedMessage(kind=PAYLOAD_PROBLEM, payload=job.problem, nbytes=job.file_size)


def _is_real_file(job: Job) -> bool:
    """Whether the job's path points at an actual readable file."""
    import os

    return bool(job.path) and os.path.exists(job.path)


#: registry of the paper's three strategies, by name
STRATEGIES: dict[str, type[TransmissionStrategy]] = {
    FullLoadStrategy.name: FullLoadStrategy,
    SerializedLoadStrategy.name: SerializedLoadStrategy,
    NFSStrategy.name: NFSStrategy,
}


def get_strategy(name: str) -> TransmissionStrategy:
    """Build a strategy from its name (``full_load``, ``serialized_load``,
    ``nfs``)."""
    if name not in STRATEGIES:
        raise SchedulingError(
            f"unknown strategy {name!r}; known strategies: {sorted(STRATEGIES)}"
        )
    return STRATEGIES[name]()
