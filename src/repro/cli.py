"""Command-line interface of the benchmark.

``repro-bench`` exposes the main workflows without writing Python:

* ``repro-bench list`` -- registered models, options and methods;
* ``repro-bench price`` -- price one option from the command line;
* ``repro-bench table1|table2|table3`` -- regenerate the paper's tables on
  the simulated cluster;
* ``repro-bench run`` -- actually value a (scaled-down) portfolio on the
  local machine with multiprocessing workers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Risk-management benchmark for parallel architectures "
        "(Premia/Nsp/MPI reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered models, options and methods")

    price = sub.add_parser("price", help="price a single option")
    price.add_argument("--model", default="BlackScholes1D")
    price.add_argument("--option", default="CallEuro")
    price.add_argument("--method", default="CF_Call")
    price.add_argument("--spot", type=float, default=100.0)
    price.add_argument("--strike", type=float, default=100.0)
    price.add_argument("--maturity", type=float, default=1.0)
    price.add_argument("--rate", type=float, default=0.05)
    price.add_argument("--volatility", type=float, default=0.2)

    for table, help_text in (
        ("table1", "regenerate Table I (non-regression tests speedup)"),
        ("table2", "regenerate Table II (toy portfolio, strategy comparison)"),
        ("table3", "regenerate Table III (realistic portfolio, strategy comparison)"),
    ):
        cmd = sub.add_parser(table, help=help_text)
        cmd.add_argument(
            "--cpus",
            type=int,
            nargs="+",
            default=None,
            help="CPU counts to simulate (default: the paper's counts)",
        )
        cmd.add_argument("--strategy", default=None, help="restrict to one strategy")

    run = sub.add_parser("run", help="value a scaled-down portfolio locally")
    run.add_argument("--portfolio", choices=("toy", "realistic", "regression"), default="toy")
    run.add_argument("--positions", type=int, default=64, help="number of positions")
    run.add_argument("--workers", type=int, default=2, help="worker processes")
    run.add_argument("--strategy", default="serialized_load")
    return parser


def _cmd_list() -> int:
    from repro.pricing import list_methods, list_models, list_products

    print("Models:")
    for name in list_models():
        print(f"  {name}")
    print("Options:")
    for name in list_products():
        print(f"  {name}")
    print("Methods (including aliases):")
    for name in list_methods():
        print(f"  {name}")
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.pricing import PricingProblem

    problem = PricingProblem()
    problem.set_asset("equity")
    problem.set_model(
        args.model, spot=args.spot, rate=args.rate, volatility=args.volatility
    )
    problem.set_option(args.option, strike=args.strike, maturity=args.maturity)
    problem.set_method(args.method)
    result = problem.compute()
    print(f"price  = {result.price:.6f}")
    if result.delta is not None:
        print(f"delta  = {result.delta:.6f}")
    if result.std_error is not None:
        print(f"stderr = {result.std_error:.6f}")
    return 0


def _cmd_table(table: str, args: argparse.Namespace) -> int:
    from repro.cluster import paper_cost_model
    from repro.core import (
        build_realistic_portfolio,
        build_regression_portfolio,
        build_toy_portfolio,
        compare_strategies,
        format_comparison_table,
        sweep_cpu_counts,
    )

    cost_model = paper_cost_model()
    if table == "table1":
        cpus = args.cpus or [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256]
        portfolio = build_regression_portfolio(profile="paper")
        jobs = portfolio.build_jobs(cost_model=cost_model)
        result = sweep_cpu_counts(jobs, cpus, strategy=args.strategy or "serialized_load")
        print(result.format())
        return 0

    if table == "table2":
        cpus = args.cpus or [2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50]
        portfolio = build_toy_portfolio(n_options=10_000)
    else:
        cpus = args.cpus or [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512]
        portfolio = build_realistic_portfolio(profile="paper")
    jobs = portfolio.build_jobs(cost_model=cost_model)
    strategies = [args.strategy] if args.strategy else ["full_load", "nfs", "serialized_load"]
    tables = compare_strategies(jobs, cpus, strategies=strategies)
    print(format_comparison_table(tables.values()))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.cluster import MultiprocessingBackend
    from repro.core import (
        PORTFOLIO_BUILDERS,
        portfolio_value,
        run_portfolio,
    )

    if args.portfolio == "toy":
        portfolio = PORTFOLIO_BUILDERS["toy"](n_options=args.positions)
    elif args.portfolio == "realistic":
        portfolio = PORTFOLIO_BUILDERS["realistic"](
            profile="fast", scale=max(args.positions / 7931.0, 1e-3)
        )
    else:
        portfolio = PORTFOLIO_BUILDERS["regression"](profile="fast")
    backend = MultiprocessingBackend(n_workers=args.workers)
    report = run_portfolio(portfolio, backend, strategy=args.strategy)
    print(
        f"valued {report.n_jobs} positions on {report.n_workers} workers "
        f"in {report.total_time:.2f}s ({len(report.errors)} errors)"
    )
    print(f"portfolio value = {portfolio_value(portfolio, report.prices()):.2f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-bench`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "price":
        return _cmd_price(args)
    if args.command in ("table1", "table2", "table3"):
        return _cmd_table(args.command, args)
    if args.command == "run":
        return _cmd_run(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
