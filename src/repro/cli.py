"""Command-line interface of the benchmark.

``repro-bench`` exposes the main workflows without writing Python; every
subcommand is a thin veneer over the unified
:class:`~repro.api.session.ValuationSession` facade:

* ``repro-bench list`` -- registered models, options, methods, backends
  and schedulers;
* ``repro-bench price`` -- price one option from the command line;
* ``repro-bench table1|table2|table3`` -- regenerate the paper's tables on
  the simulated cluster;
* ``repro-bench run`` -- actually value a (scaled-down) portfolio, either on
  local multiprocessing workers or on remote TCP workers
  (``--backend remote --hosts host:port ...``; see the ``repro-worker``
  console script in :mod:`repro.cluster.worker`);
* ``repro-bench risk`` -- portfolio Greeks and a historical-VaR campaign on
  the CRN scenario-grid engine (:mod:`repro.pricing.scenarios`);
  ``--smoke`` cross-checks the batched grid against the serial
  bump-and-revalue oracle and fails loudly on any bit difference;
* ``repro-bench sweep`` -- simulate one portfolio over a list of CPU counts
  and print the speedup table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]

_PORTFOLIO_CHOICES = ("toy", "realistic", "regression")


def _add_portfolio_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--portfolio", choices=_PORTFOLIO_CHOICES, default="toy")
    cmd.add_argument("--positions", type=int, default=64, help="number of positions")


def _add_scheduler_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--scheduler",
        default=None,
        help="registered scheduler name (see repro.core.scheduler.SCHEDULERS; "
        "default robin_hood)",
    )
    cmd.add_argument(
        "--scheduler-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="scheduler constructor option, repeatable (e.g. "
        "--scheduler chunked_robin_hood --scheduler-opt chunk_size=25); "
        "values parse as int/float/bool when they look like one",
    )


def _parse_opt_value(text: str):
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _scheduler_factory(args: argparse.Namespace):
    """Build a validated scheduler factory from --scheduler/--scheduler-opt.

    Validation rides on :class:`~repro.api.config.RunConfig` (the same path
    programmatic configuration uses): unknown names fail there, bad option
    values fail on the eager trial construction below.  Returns ``None``
    when no scheduler flags were given.
    """
    from repro.api import RunConfig

    options: dict = {}
    for pair in args.scheduler_opt or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--scheduler-opt {pair!r} is not KEY=VALUE")
        options[key] = _parse_opt_value(value)
    if options and not args.scheduler:
        raise ValueError("--scheduler-opt needs --scheduler")
    if not args.scheduler:
        return None
    config = RunConfig(scheduler=args.scheduler, scheduler_options=options)
    factory = config.scheduler_factory()
    factory()  # fail on bad options here, with the constructor's message
    return factory


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Risk-management benchmark for parallel architectures "
        "(Premia/Nsp/MPI reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list registered models, options, methods, backends and schedulers",
    )

    price = sub.add_parser("price", help="price a single option")
    price.add_argument("--model", default="BlackScholes1D")
    price.add_argument("--option", default="CallEuro")
    price.add_argument("--method", default="CF_Call")
    price.add_argument("--spot", type=float, default=100.0)
    price.add_argument("--strike", type=float, default=100.0)
    price.add_argument("--maturity", type=float, default=1.0)
    price.add_argument("--rate", type=float, default=0.05)
    price.add_argument("--volatility", type=float, default=0.2)

    for table, help_text in (
        ("table1", "regenerate Table I (non-regression tests speedup)"),
        ("table2", "regenerate Table II (toy portfolio, strategy comparison)"),
        ("table3", "regenerate Table III (realistic portfolio, strategy comparison)"),
    ):
        cmd = sub.add_parser(table, help=help_text)
        cmd.add_argument(
            "--cpus",
            type=int,
            nargs="+",
            default=None,
            help="CPU counts to simulate (default: the paper's counts)",
        )
        cmd.add_argument("--strategy", default=None, help="restrict to one strategy")
        cmd.add_argument(
            "--batch",
            action="store_true",
            help="regenerate the table with shared-simulation batching "
            "(coalesced families cost one path simulation plus per-member "
            "payoff sweeps in the simulated cluster)",
        )
        _add_scheduler_args(cmd)

    run = sub.add_parser("run", help="value a scaled-down portfolio for real")
    _add_portfolio_args(run)
    run.add_argument("--workers", type=int, default=2, help="worker processes")
    run.add_argument("--strategy", default="serialized_load")
    run.add_argument(
        "--backend",
        default="multiprocessing",
        help="registered execution backend name (see `repro-bench list`); "
        "'remote' talks to repro-worker TCP servers",
    )
    run.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="HOST:PORT",
        help="remote worker addresses for --backend remote (default: spawn "
        "--workers loopback workers on 127.0.0.1)",
    )
    run.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="group same-simulation positions and price them against shared "
        "path sets (--no-batch prices every position independently)",
    )
    run.add_argument(
        "--kernel",
        choices=("loop", "stacked"),
        default="loop",
        help="Monte-Carlo evaluation kernel for --batch groups: 'loop' "
        "prices members one by one against the shared paths, 'stacked' "
        "evaluates whole groups as one stacked-array computation "
        "(bit-identical prices, much faster on large families)",
    )
    run.add_argument(
        "--cache",
        action="store_true",
        help="enable the digest-keyed result cache for this run",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="back the result cache with an on-disk store shared by the "
        "workers (implies --cache)",
    )
    run.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="value the portfolio N times (with --cache the repeats are "
        "answered from the cache; useful to measure hit rates)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="stream per-position completion as results land (count + "
        "running mean std-error), built on session.stream",
    )
    _add_scheduler_args(run)

    risk = sub.add_parser(
        "risk",
        help="portfolio Greeks and a historical-VaR campaign on the CRN "
        "scenario-grid engine",
    )
    risk.add_argument(
        "--positions", type=int, default=8, help="Monte-Carlo call ladder size"
    )
    risk.add_argument(
        "--paths", type=int, default=16_000, help="Monte-Carlo paths per simulation"
    )
    risk.add_argument(
        "--var-scenarios",
        type=int,
        default=100,
        help="historical spot-return scenarios in the VaR campaign",
    )
    risk.add_argument("--confidence", type=float, default=0.99)
    risk.add_argument(
        "--seed", type=int, default=0, help="seed for the synthetic return history"
    )
    risk.add_argument(
        "--kernel",
        choices=("loop", "stacked"),
        default="stacked",
        help="Monte-Carlo kernel behind the batched scenario grid",
    )
    risk.add_argument(
        "--smoke",
        action="store_true",
        help="differential check: also run the serial bump-and-revalue oracle "
        "and verify the batched engine matches it bit-for-bit (exit 1 on "
        "mismatch)",
    )

    sweep = sub.add_parser(
        "sweep", help="simulate one portfolio over a list of CPU counts"
    )
    _add_portfolio_args(sweep)
    sweep.add_argument(
        "--cpus",
        type=int,
        nargs="+",
        default=[2, 4, 8, 16],
        help="CPU counts to simulate",
    )
    sweep.add_argument("--strategy", default="serialized_load")
    _add_scheduler_args(sweep)
    sweep.add_argument(
        "--cold-nfs-cache",
        action="store_true",
        help="give every CPU count an independent cold NFS cache",
    )
    sweep.add_argument(
        "--batch",
        action="store_true",
        help="coalesce shared-simulation families before sweeping",
    )
    return parser


def _build_cli_portfolio(args: argparse.Namespace):
    from repro.core import PORTFOLIO_BUILDERS

    if args.portfolio == "toy":
        return PORTFOLIO_BUILDERS["toy"](n_options=args.positions)
    if args.portfolio == "realistic":
        return PORTFOLIO_BUILDERS["realistic"](
            profile="fast", scale=max(args.positions / 7931.0, 1e-3)
        )
    return PORTFOLIO_BUILDERS["regression"](profile="fast")


def _cmd_list() -> int:
    from repro.cluster.backends import list_backends
    from repro.core.scheduler import SCHEDULERS
    from repro.pricing import list_methods, list_models, list_products

    print("Models:")
    for name in list_models():
        print(f"  {name}")
    print("Options:")
    for name in list_products():
        print(f"  {name}")
    print("Methods (including aliases):")
    for name in list_methods():
        print(f"  {name}")
    print("Backends:")
    for name in list_backends():
        print(f"  {name}")
    print("Schedulers:")
    for name in sorted(SCHEDULERS):
        print(f"  {name}")
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.api import ValuationSession

    session = ValuationSession(backend="local")
    result = session.price(
        model=args.model,
        option=args.option,
        method=args.method,
        model_params={"spot": args.spot, "rate": args.rate, "volatility": args.volatility},
        option_params={"strike": args.strike, "maturity": args.maturity},
    )
    print(f"price  = {result.price:.6f}")
    if result.delta is not None:
        print(f"delta  = {result.delta:.6f}")
    if result.std_error is not None:
        print(f"stderr = {result.std_error:.6f}")
    return 0


def _resolve_scheduler(args: argparse.Namespace):
    """``(factory, error)``: the validated scheduler factory or a message."""
    from repro.errors import ReproError

    try:
        return _scheduler_factory(args), None
    except (ValueError, TypeError, ReproError) as exc:
        return None, str(exc)


def _cmd_table(table: str, args: argparse.Namespace) -> int:
    from repro.api import ValuationSession
    from repro.cluster import paper_cost_model
    from repro.core import (
        build_realistic_portfolio,
        build_regression_portfolio,
        build_toy_portfolio,
    )

    scheduler, error = _resolve_scheduler(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = ValuationSession(
        backend="simulated", cost_model=paper_cost_model(), scheduler=scheduler
    )
    if table == "table1":
        cpus = args.cpus or [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256]
        portfolio = build_regression_portfolio(profile="paper")
        result = session.sweep(
            portfolio, cpus, strategy=args.strategy or "serialized_load",
            batch=args.batch,
        )
        print(result.format())
        return 0

    if table == "table2":
        cpus = args.cpus or [2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50]
        portfolio = build_toy_portfolio(n_options=10_000)
    else:
        cpus = args.cpus or [2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512]
        portfolio = build_realistic_portfolio(profile="paper")
    strategies = [args.strategy] if args.strategy else ["full_load", "nfs", "serialized_load"]
    comparison = session.compare(portfolio, cpus, strategies=strategies, batch=args.batch)
    if args.batch:
        print(f"({table} regenerated with shared-simulation batching)")
    print(comparison.format())
    return 0


def _run_with_progress(session, portfolio, batch: bool, kernel: str = "loop"):
    """Stream a portfolio run, rendering per-position completion lines.

    Results land in completion order (the paper's master collecting from any
    source); each tick shows the collected count and the running mean
    standard error over the Monte-Carlo positions seen so far.
    """
    streamed = session.stream(portfolio, batch=batch, kernel=kernel)
    total = streamed.n_total
    count = 0
    se_sum = 0.0
    se_count = 0
    for price in streamed:
        count += 1
        if price.std_error is not None:
            se_sum += price.std_error
            se_count += 1
        mean_se = f"{se_sum / se_count:.6f}" if se_count else "-"
        label = price.label or f"job {price.job_id}"
        print(
            f"\r  [{count}/{total}] {label:<28.28s} price={price.price:>10.4f} "
            f"mean stderr={mean_se}",
            end="",
            flush=True,
        )
    print()
    return streamed.result()


def _cmd_run(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.api import ValuationSession
    from repro.cluster.backends import list_backends

    if args.backend not in list_backends():
        # validated against the live registry, not a hard-coded list, so
        # backends registered by plugins/sitecustomize work from the CLI too
        print(
            f"error: unknown backend {args.backend!r}; registered backends: "
            f"{', '.join(list_backends())}",
            file=sys.stderr,
        )
        return 2
    if args.hosts and args.backend != "remote":
        print("error: --hosts only applies to --backend remote", file=sys.stderr)
        return 2
    scheduler, error = _resolve_scheduler(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    portfolio = _build_cli_portfolio(args)
    cache: object = args.cache_dir if args.cache_dir else bool(args.cache)
    with ExitStack() as stack:
        backend_options = None
        if args.backend == "remote":
            hosts = args.hosts
            if not hosts:
                # no external workers given: spawn a loopback pool so the
                # remote path is exercisable from a single machine
                from repro.cluster.worker import spawn_local_workers

                pool = stack.enter_context(
                    spawn_local_workers(args.workers, cache_dir=args.cache_dir)
                )
                print(f"spawned {len(pool)} loopback workers: {', '.join(pool)}")
                hosts = pool.hosts
            backend_options = {"hosts": hosts}
        session = ValuationSession(
            backend=args.backend,
            strategy=args.strategy,
            n_workers=args.workers,
            scheduler=scheduler,
            cache=cache,
            backend_options=backend_options,
        )
        repeats = max(1, args.repeat)
        for iteration in range(repeats):
            if args.progress:
                result = _run_with_progress(
                    session, portfolio, batch=args.batch, kernel=args.kernel
                )
            else:
                result = session.run(portfolio, batch=args.batch, kernel=args.kernel)
            report = result.report
            prefix = f"[{iteration + 1}/{repeats}] " if repeats > 1 else ""
            print(
                f"{prefix}valued {report.n_jobs} positions on {report.n_workers} workers "
                f"in {report.total_time:.2f}s ({len(report.errors)} errors, "
                f"batch={'on' if args.batch else 'off'})"
            )
    print(f"portfolio value = {result.value():.2f}")
    if session.cache is not None:
        stats = session.cache.stats
        print(
            f"cache: {stats.hits} hits / {stats.lookups} lookups "
            f"(hit rate {stats.hit_rate:.0%}, {stats.evictions} evictions)"
        )
    return 0


def _build_risk_portfolio(n_positions: int, n_paths: int):
    """A single-model Monte-Carlo call ladder: the CRN engine's best case.

    Every position shares one Black-Scholes model and one seeded method
    configuration, so the whole bumped scenario grid collapses into a
    handful of shared-draw stacked simulations.
    """
    from repro.core import Portfolio, Position
    from repro.pricing import PricingProblem

    portfolio = Portfolio(name="risk_ladder")
    for index in range(n_positions):
        strike = 80.0 + 40.0 * index / max(n_positions - 1, 1)
        problem = PricingProblem(label=f"call_K{strike:.2f}")
        problem.set_asset("equity")
        problem.set_model("BlackScholes1D", spot=100.0, rate=0.045, volatility=0.22)
        problem.set_option("CallEuro", strike=strike, maturity=1.0)
        problem.set_method("MC_European", n_paths=n_paths, seed=0)
        portfolio.add(
            Position(problem=problem, category="vanilla_mc", label=problem.label)
        )
    return portfolio


def _cmd_risk(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.core.risk import historical_var, portfolio_greeks

    portfolio = _build_risk_portfolio(args.positions, args.paths)
    returns = np.random.default_rng(args.seed).normal(0.0, 0.01, args.var_scenarios)

    start = time.perf_counter()
    batched = portfolio_greeks(portfolio, engine="batched", kernel=args.kernel)
    greeks_elapsed = time.perf_counter() - start
    print(f"portfolio Greeks (batched CRN engine, {args.positions} positions):")
    print(
        f"  value = {batched.total_value:.4f}  delta = {batched.total_delta:.4f}  "
        f"gamma = {batched.total_gamma:.6f}"
    )
    print(
        f"  vega  = {batched.total_vega:.4f}  rho   = {batched.total_rho:.4f}  "
        f"theta = {batched.total_theta:.4f}"
    )
    print(f"  elapsed {greeks_elapsed:.3f}s")

    start = time.perf_counter()
    var = historical_var(
        portfolio, returns.tolist(), confidence=args.confidence,
        engine="batched", kernel=args.kernel,
    )
    var_elapsed = time.perf_counter() - start
    print(
        f"historical VaR ({args.var_scenarios} scenarios, "
        f"{args.confidence:.0%} confidence):"
    )
    print(
        f"  base value = {var['base_value']:.4f}  VaR = {var['var']:.4f}  "
        f"ES = {var['expected_shortfall']:.4f}  worst = {var['worst_loss']:.4f}"
    )
    print(f"  elapsed {var_elapsed:.3f}s")

    if not args.smoke:
        return 0

    # differential smoke: the serial bump-and-revalue oracle must agree
    # bit-for-bit (the CRN grid replays the very same seeded draws)
    start = time.perf_counter()
    serial = portfolio_greeks(portfolio, engine="serial")
    serial_var = historical_var(
        portfolio, returns.tolist(), confidence=args.confidence, engine="serial"
    )
    serial_elapsed = time.perf_counter() - start
    failures = []
    for field in ("total_value", "total_delta", "total_gamma", "total_vega",
                  "total_rho", "total_theta"):
        got, want = getattr(batched, field), getattr(serial, field)
        if got != want:
            failures.append(f"{field}: batched {got!r} != serial {want!r}")
    for pair in zip(batched.positions, serial.positions):
        if pair[0].price != pair[1].price:
            failures.append(
                f"position {pair[0].label!r}: base price {pair[0].price!r} "
                f"!= {pair[1].price!r}"
            )
    for key in ("base_value", "var", "expected_shortfall", "worst_loss"):
        if var[key] != serial_var[key]:
            failures.append(f"VaR {key}: batched {var[key]!r} != serial {serial_var[key]!r}")
    print(
        f"smoke: serial oracle elapsed {serial_elapsed:.3f}s "
        f"(speedup {serial_elapsed / max(greeks_elapsed + var_elapsed, 1e-9):.1f}x)"
    )
    if failures:
        for line in failures:
            print(f"  MISMATCH {line}", file=sys.stderr)
        print("smoke: FAIL", file=sys.stderr)
        return 1
    print("smoke: PASS (batched CRN risk == serial bump-and-revalue)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import ValuationSession

    scheduler, error = _resolve_scheduler(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    portfolio = _build_cli_portfolio(args)
    session = ValuationSession(
        backend="simulated", strategy=args.strategy, scheduler=scheduler
    )
    result = session.sweep(
        portfolio,
        args.cpus,
        share_nfs_cache=not args.cold_nfs_cache,
        label=f"{args.portfolio}/{args.strategy}",
    )
    print(result.format())
    best = result.best_cpu_count()
    print(f"fastest configuration: {best} CPUs ({result.times()[best]:.3f}s simulated)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-bench`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "price":
        return _cmd_price(args)
    if args.command in ("table1", "table2", "table3"):
        return _cmd_table(args.command, args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "risk":
        return _cmd_risk(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
