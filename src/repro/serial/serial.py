"""``Serial`` objects: serialized (optionally compressed) value buffers.

In Nsp, "almost all the Nsp objects can be serialized into a Serial object"
and these Serial objects are what gets packed and shipped over MPI
(``MPI_Send_Obj`` / ``MPI_Recv_Obj``).  Nsp also recently gained "the
possibility to compress the serialized buffer used in serialized objects",
with transparent decompression in ``unserialize``.

This module reproduces that behaviour:

>>> from repro.serial import serialize
>>> s = serialize(list(range(100)))
>>> s                                        # doctest: +ELLIPSIS
<...-bytes serial>
>>> s1 = s.compress()
>>> s1.unserialize() == s.unserialize()
True
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.errors import SerializationError
from repro.serial import xdr

__all__ = ["Serial", "serialize", "unserialize"]

#: header bytes marking a raw or compressed serialized payload
_MAGIC_RAW = b"NSR0"
_MAGIC_COMPRESSED = b"NSC0"


class Serial:
    """An immutable serialized value.

    A :class:`Serial` wraps the XDR byte encoding of a value, possibly
    compressed with zlib.  It can be transmitted, stored or hashed without
    ever materialising the underlying object; :meth:`unserialize` rebuilds
    the value (transparently handling compression, like Nsp's
    ``unserialize`` method).
    """

    __slots__ = ("_payload", "_compressed")

    def __init__(self, payload: bytes, compressed: bool = False) -> None:
        self._payload = bytes(payload)
        self._compressed = bool(compressed)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_value(cls, value: Any) -> "Serial":
        """Serialize ``value`` (without compression)."""
        return cls(xdr.encode(value), compressed=False)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Serial":
        """Rebuild a :class:`Serial` from :meth:`to_bytes` output (for files
        and message passing)."""
        data = bytes(data)
        if len(data) < 4:
            raise SerializationError("serial buffer too short")
        magic, payload = data[:4], data[4:]
        if magic == _MAGIC_RAW:
            return cls(payload, compressed=False)
        if magic == _MAGIC_COMPRESSED:
            return cls(payload, compressed=True)
        raise SerializationError(f"unknown serial magic {magic!r}")

    # -- views -------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Self-describing byte representation (magic + payload)."""
        magic = _MAGIC_COMPRESSED if self._compressed else _MAGIC_RAW
        return magic + self._payload

    @property
    def payload(self) -> bytes:
        """The raw (possibly compressed) payload without the magic header."""
        return self._payload

    @property
    def is_compressed(self) -> bool:
        return self._compressed

    @property
    def nbytes(self) -> int:
        """Size in bytes of :meth:`to_bytes` (what travels over the wire)."""
        return len(self._payload) + 4

    # -- transformations -----------------------------------------------------------
    def compress(self, level: int = 6) -> "Serial":
        """Return a compressed copy (no-op if already compressed)."""
        if self._compressed:
            return self
        return Serial(zlib.compress(self._payload, level), compressed=True)

    def uncompress(self) -> "Serial":
        """Return an uncompressed copy (no-op if not compressed)."""
        if not self._compressed:
            return self
        try:
            raw = zlib.decompress(self._payload)
        except zlib.error as exc:  # pragma: no cover - corrupted input
            raise SerializationError(f"corrupted compressed serial: {exc}") from exc
        return Serial(raw, compressed=False)

    def unserialize(self) -> Any:
        """Rebuild the original value (decompressing transparently)."""
        raw = self.uncompress()._payload
        return xdr.decode(raw)

    # -- dunder -------------------------------------------------------------------
    def __len__(self) -> int:
        return self.nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Serial):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def __repr__(self) -> str:
        kind = "compressed serial" if self._compressed else "serial"
        return f"<{self.nbytes}-bytes {kind}>"


def serialize(value: Any) -> Serial:
    """Serialize any supported value into a :class:`Serial` object."""
    return Serial.from_value(value)


def unserialize(serial: Serial | bytes) -> Any:
    """Rebuild a value from a :class:`Serial` (or its byte representation)."""
    if isinstance(serial, (bytes, bytearray)):
        serial = Serial.from_bytes(serial)
    if not isinstance(serial, Serial):
        raise SerializationError("unserialize expects a Serial object or bytes")
    return serial.unserialize()
