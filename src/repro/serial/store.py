"""Problem files: ``save`` / ``load`` / ``sload`` and the portfolio store.

The paper represents a portfolio as "a collection of files, each file
describing a precise pricing problem" saved with the XDR-based ``save``
function.  Three ways of getting a saved problem to a worker are compared in
Tables II and III:

* **full load** -- the master ``load``\\ s the file (materialising the
  object), serializes it again, packs it and sends it;
* **serialized load** -- the master uses :func:`sload` to turn the file
  content *directly* into a :class:`~repro.serial.serial.Serial` object
  without ever building the object, and sends that ("Going directly from the
  file to the serialized object without actually creating the object itself
  is precisely the purpose of the sload function");
* **NFS** -- the master only sends the file *name* and the worker reads the
  file from the shared file system.

This module implements ``save``/``load``/``sload`` on the local file system
and :class:`ProblemStore`, a directory of problem files used by the
portfolio builders and the benchmark runner.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterator

from repro.errors import SerializationError
from repro.serial.serial import Serial, serialize

__all__ = ["save", "load", "sload", "ProblemStore"]


def save(path: str | os.PathLike, value: Any, compress: bool = False) -> int:
    """Serialize ``value`` and write it to ``path``.

    Returns the number of bytes written.  With ``compress=True`` the payload
    is zlib-compressed ("compression, which takes most of the CPU time, can
    be done off line when preparing a set of problems").
    """
    serial = serialize(value)
    if compress:
        serial = serial.compress()
    data = serial.to_bytes()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def load(path: str | os.PathLike) -> Any:
    """Read a problem file and rebuild the stored value."""
    return sload(path).unserialize()


def sload(path: str | os.PathLike) -> Serial:
    """Read a problem file *directly* into a :class:`Serial` object.

    No object is materialised: the file content (which is already a
    serialized buffer) is wrapped as-is, which is exactly the optimisation
    the paper's ``sload`` function provides (Fig. 2) and that the
    *serialized load* strategy of Tables II and III exploits.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SerializationError(f"cannot read problem file {path}: {exc}") from exc
    return Serial.from_bytes(data)


class ProblemStore:
    """A directory of serialized problem files representing a portfolio.

    Files are named ``<prefix><index>.pb`` and written with :func:`save`.
    The store records insertion order so that a portfolio read back from disk
    preserves the job order used by the schedulers.
    """

    suffix = ".pb"

    def __init__(self, directory: str | os.PathLike, prefix: str = "problem_") -> None:
        self.directory = Path(directory)
        self.prefix = prefix
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- writing -----------------------------------------------------------------
    def write(self, index: int, value: Any, compress: bool = False) -> Path:
        """Write one problem file and return its path."""
        path = self.path_for(index)
        save(path, value, compress=compress)
        return path

    def write_all(self, values: Iterator[Any] | list[Any], compress: bool = False) -> list[Path]:
        """Write a sequence of problems, numbering them from 0."""
        return [self.write(i, value, compress=compress) for i, value in enumerate(values)]

    # -- reading -----------------------------------------------------------------
    def path_for(self, index: int) -> Path:
        return self.directory / f"{self.prefix}{index:06d}{self.suffix}"

    def paths(self) -> list[Path]:
        """All problem files in the store, in index order."""
        return sorted(self.directory.glob(f"{self.prefix}*{self.suffix}"))

    def load(self, index: int) -> Any:
        return load(self.path_for(index))

    def sload(self, index: int) -> Serial:
        return sload(self.path_for(index))

    def load_all(self) -> list[Any]:
        return [load(path) for path in self.paths()]

    def __len__(self) -> int:
        return len(self.paths())

    def __iter__(self) -> Iterator[Path]:
        return iter(self.paths())

    def total_bytes(self) -> int:
        """Total size of the stored problem files (drives the NFS and
        message-size models of the simulated cluster)."""
        return sum(path.stat().st_size for path in self.paths())

    def clear(self) -> None:
        """Delete every problem file in the store."""
        for path in self.paths():
            path.unlink()
