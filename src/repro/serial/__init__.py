"""``repro.serial`` -- architecture-independent serialization (Nsp substitute).

Provides the XDR-style encoder (:mod:`repro.serial.xdr`), the ``Serial``
object with optional compression (:mod:`repro.serial.serial`), the
``save`` / ``load`` / ``sload`` problem-file functions plus the
:class:`~repro.serial.store.ProblemStore` directory abstraction
(:mod:`repro.serial.store`), and the length-prefixed message framing used
by the remote TCP worker protocol (:mod:`repro.serial.frames`).

Importing this package registers the codecs for
:class:`~repro.pricing.engine.PricingProblem`,
:class:`~repro.pricing.methods.base.PricingResult` and
:class:`~repro.pricing.batch.ProblemBatch`, so pricing problems -- and whole
shared-simulation batches of them -- can be saved, loaded and shipped across
the cluster out of the box.
"""

from repro.pricing.batch import ProblemBatch
from repro.pricing.engine import PricingProblem
from repro.pricing.methods.base import PricingResult
from repro.serial import xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_RESULT,
    FRAME_STOP,
    FrameAssembler,
    decode_header,
    encode_frame,
    read_frame,
)
from repro.serial.serial import Serial, serialize, unserialize
from repro.serial.store import ProblemStore, load, save, sload
from repro.serial.xdr import decode, encode, register_codec, registered_type_names

# register the pricing-layer codecs so problems round-trip through XDR
register_codec(
    "PricingProblem",
    PricingProblem,
    lambda problem: problem.to_dict(),
    PricingProblem.from_dict,
)
register_codec(
    "PricingResult",
    PricingResult,
    lambda result: result.as_dict(),
    PricingResult.from_dict,
)
register_codec(
    "ProblemBatch",
    ProblemBatch,
    lambda batch: batch.to_dict(),
    ProblemBatch.from_dict,
)

__all__ = [
    "Serial",
    "serialize",
    "unserialize",
    "encode_frame",
    "decode_header",
    "read_frame",
    "FrameAssembler",
    "FRAME_HELLO",
    "FRAME_JOB",
    "FRAME_RESULT",
    "FRAME_STOP",
    "save",
    "load",
    "sload",
    "ProblemStore",
    "encode",
    "decode",
    "register_codec",
    "registered_type_names",
    "xdr",
]
