"""Length-prefixed message frames for the remote worker protocol.

The paper ships jobs between the master and its MPI slaves with
``MPI_Send_Obj`` / ``MPI_Recv_Obj``: a serialized Nsp object travels as one
self-delimiting message.  The remote TCP backend
(:mod:`repro.cluster.backends.remote`) needs the same property over a byte
stream, so this module defines the wire framing both ends share:

.. code-block:: text

    +-------+---------+--------+----------------+-----------------+
    | magic | version |  kind  | payload length |     payload     |
    | 4 B   | u16 BE  | u16 BE |     u32 BE     | `length` bytes  |
    +-------+---------+--------+----------------+-----------------+

The payload of :data:`FRAME_JOB` / :data:`FRAME_RESULT` frames is an XDR
encoding (:mod:`repro.serial.xdr`) of a plain dictionary, so everything the
existing codecs can serialize -- including whole
:class:`~repro.pricing.batch.ProblemBatch` super-jobs -- crosses the machine
boundary unchanged.  The header is validated before any payload byte is
read: a wrong magic, a protocol-version mismatch, or a length above
``max_bytes`` raises :class:`~repro.errors.SerializationError` without
allocating the payload, so a confused or hostile peer cannot make the
master balloon its memory.

Framing is deliberately socket-free: :func:`encode_frame` returns bytes,
:class:`FrameAssembler` consumes arbitrary chunks (what ``recv`` happens to
return) and yields complete frames, and :func:`read_frame` drives any
blocking ``read(n)`` callable.  The socket handling lives with the backend
and the worker, the byte format lives here, next to the other codecs.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from collections import deque
from typing import Callable, Iterator

from repro.errors import SerializationError

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "FRAME_HELLO",
    "FRAME_JOB",
    "FRAME_RESULT",
    "FRAME_STOP",
    "FRAME_JOB_BATCH",
    "FRAME_PING",
    "FRAME_PONG",
    "FRAME_CHALLENGE",
    "FRAME_AUTH",
    "FRAME_RESULT_BATCH",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_header",
    "FrameAssembler",
    "read_frame",
    "read_frame_versioned",
    "auth_proof",
    "verify_proof",
]

#: bytes opening every frame ("Repro Worker Frame")
FRAME_MAGIC = b"RWF\x01"
_MAGIC = FRAME_MAGIC

#: bump on any incompatible change to the frame layout *or* the payload
#: dictionaries; both ends refuse to talk across versions.
#: v2 added :data:`FRAME_JOB_BATCH` (chunked dispatch: several jobs in one
#: message) -- a v1 peer would silently drop batch frames, so the whole
#: protocol is gated on the version instead.
#: v3 added the :data:`FRAME_PING` / :data:`FRAME_PONG` keepalive so an idle
#: master (e.g. the ``repro-serve`` daemon between campaigns) can detect dead
#: workers without dispatching a job -- an older worker would treat a ping as
#: an unknown kind, so the keepalive is version-gated like everything else.
#: v4 added the optional HMAC-SHA256 handshake (:data:`FRAME_CHALLENGE` /
#: :data:`FRAME_AUTH`) plus a ``nonce`` in the worker hello; it is the first
#: *backwards-compatible* bump -- see :data:`MIN_PROTOCOL_VERSION`.
#: v5 added :data:`FRAME_RESULT_BATCH` (chunked collection: a worker answers
#: one :data:`FRAME_JOB_BATCH` with one coalesced result message instead of
#: one frame per member -- the collection-side mirror of the paper's "send a
#: single large message" advice).  Backwards compatible: a worker replying
#: to a v3/v4 master keeps sending per-member :data:`FRAME_RESULT` frames.
PROTOCOL_VERSION = 5

#: oldest peer version this end still decodes.  A v4 master speaks v3 on a
#: connection whose worker greeted at v3 (no handshake frames, same job and
#: result payloads), so upgrading the master fleet before the workers is
#: safe -- as long as no shared secret is configured, which v3 cannot carry.
MIN_PROTOCOL_VERSION = 3

#: worker -> master greeting sent once per connection (worker identity)
FRAME_HELLO = 1
#: master -> worker: one job to price (payload: job dictionary)
FRAME_JOB = 2
#: worker -> master: one priced job (payload: result dictionary)
FRAME_RESULT = 3
#: master -> worker: no more work, close the connection (empty payload) --
#: the paper's empty message of Fig. 4
FRAME_STOP = 4
#: master -> worker: a whole chunk of jobs in one message (payload:
#: ``{"jobs": [job dictionary, ...]}``); the worker answers with one
#: :data:`FRAME_RESULT` per member, so collection stays incremental --
#: "it is always advisable to send a single large message rather [than]
#: several smaller messages"
FRAME_JOB_BATCH = 5
#: master -> worker: liveness probe (payload: opaque token bytes, echoed
#: back verbatim); cheap enough to send between campaigns
FRAME_PING = 6
#: worker -> master: keepalive answer carrying the ping's token unchanged
FRAME_PONG = 7
#: master -> worker (v4): authentication challenge.  Payload:
#: ``{"nonce": master_nonce, "proof": HMAC-SHA256(secret, worker_nonce)}`` --
#: the master proves knowledge of the shared secret over the nonce the
#: worker published in its hello, and challenges the worker back
FRAME_CHALLENGE = 8
#: worker -> master (v4): handshake answer.  Payload:
#: ``{"proof": HMAC-SHA256(secret, master_nonce)}``
FRAME_AUTH = 9
#: worker -> master (v5): a whole chunk of priced jobs in one message
#: (payload: ``{"results": [result dictionary, ...]}``) -- the worker's
#: answer to one :data:`FRAME_JOB_BATCH`, coalesced so 1600 cheap jobs do
#: not cost 1600 small result messages
FRAME_RESULT_BATCH = 10

_KNOWN_KINDS = frozenset(
    (FRAME_HELLO, FRAME_JOB, FRAME_RESULT, FRAME_STOP, FRAME_JOB_BATCH,
     FRAME_PING, FRAME_PONG, FRAME_CHALLENGE, FRAME_AUTH, FRAME_RESULT_BATCH)
)

_HEADER = struct.Struct(">4sHHI")

#: size in bytes of the fixed frame header
FRAME_HEADER_BYTES = _HEADER.size

#: default refusal threshold for a single frame payload (64 MiB); generous
#: for serialized problem batches, small enough to stop runaway peers
MAX_FRAME_BYTES = 64 * 1024 * 1024


#: frame kinds that only exist from a given protocol version on; encoding
#: one for an older peer is a programming error, caught before the send
_KIND_SINCE = {FRAME_JOB_BATCH: 2, FRAME_PING: 3, FRAME_PONG: 3,
               FRAME_CHALLENGE: 4, FRAME_AUTH: 4, FRAME_RESULT_BATCH: 5}


def encode_frame(
    kind: int,
    payload: bytes = b"",
    *,
    version: int = PROTOCOL_VERSION,
    max_bytes: int = MAX_FRAME_BYTES,
) -> bytes:
    """Frame ``payload`` as one self-delimiting message.

    ``version`` stamps the header; a master talking to an old worker passes
    the version that worker greeted with (any value in
    ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]``) so the peer's strict
    header check accepts the frame.
    """
    if kind not in _KNOWN_KINDS:
        raise SerializationError(f"unknown frame kind {kind!r}")
    if not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION:
        raise SerializationError(
            f"cannot encode protocol v{version} frames (this end supports "
            f"v{MIN_PROTOCOL_VERSION}..v{PROTOCOL_VERSION})"
        )
    if version < _KIND_SINCE.get(kind, 1):
        raise SerializationError(
            f"frame kind {kind} does not exist in protocol v{version}"
        )
    payload = bytes(payload)
    if len(payload) > max_bytes:
        raise SerializationError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    return _HEADER.pack(_MAGIC, version, kind, len(payload)) + payload


def decode_header(header: bytes, *, max_bytes: int = MAX_FRAME_BYTES) -> tuple[int, int]:
    """Validate a frame header; return ``(kind, payload_length)``.

    Raises :class:`SerializationError` on a short header, wrong magic,
    protocol-version mismatch, unknown frame kind or oversized payload --
    before a single payload byte is consumed.
    """
    _, kind, length = _decode_header_versioned(header, max_bytes=max_bytes)
    return kind, length


def _decode_header_versioned(
    header: bytes, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[int, int, int]:
    """:func:`decode_header`, but also returning the header's stamped version.

    The version is how a *worker* learns what its master speaks: the master
    caps outgoing frames at the version the worker's hello announced, so the
    stamp on any received frame is the connection's negotiated version and
    gates whether coalesced :data:`FRAME_RESULT_BATCH` replies are allowed.
    """
    if len(header) < FRAME_HEADER_BYTES:
        raise SerializationError(
            f"truncated frame header: got {len(header)} of {FRAME_HEADER_BYTES} bytes"
        )
    magic, version, kind, length = _HEADER.unpack(header[:FRAME_HEADER_BYTES])
    if magic != _MAGIC:
        raise SerializationError(f"bad frame magic {magic!r}: not a repro worker stream")
    if not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION:
        raise SerializationError(
            f"frame protocol version mismatch: peer speaks v{version}, "
            f"this end speaks v{MIN_PROTOCOL_VERSION}..v{PROTOCOL_VERSION}"
        )
    if kind not in _KNOWN_KINDS:
        raise SerializationError(f"unknown frame kind {kind}")
    if length > max_bytes:
        raise SerializationError(
            f"frame announces a {length}-byte payload, above the "
            f"{max_bytes}-byte limit"
        )
    return version, kind, length


class FrameAssembler:
    """Incremental frame decoder for non-blocking socket reads.

    Feed it whatever ``recv`` returned -- half a header, three frames and a
    bit of a fourth -- and pop complete ``(kind, payload)`` frames as they
    become available:

    >>> asm = FrameAssembler()
    >>> data = encode_frame(FRAME_STOP) + encode_frame(FRAME_STOP)
    >>> asm.feed(data[:5]); asm.pop() is None
    True
    >>> asm.feed(data[5:]); [kind for kind, _ in asm]
    [4, 4]
    """

    def __init__(self, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._frames: deque[tuple[int, bytes]] = deque()
        self._max_bytes = max_bytes

    def feed(self, data: bytes) -> None:
        """Append raw stream bytes and extract every now-complete frame."""
        self._buffer.extend(data)
        while len(self._buffer) >= FRAME_HEADER_BYTES:
            kind, length = decode_header(
                bytes(self._buffer[:FRAME_HEADER_BYTES]), max_bytes=self._max_bytes
            )
            end = FRAME_HEADER_BYTES + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[FRAME_HEADER_BYTES:end])
            del self._buffer[:end]
            self._frames.append((kind, payload))

    def pop(self) -> tuple[int, bytes] | None:
        """Next complete ``(kind, payload)`` frame, or ``None``."""
        if self._frames:
            return self._frames.popleft()
        return None

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        while self._frames:
            yield self._frames.popleft()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)


def read_frame(
    read: Callable[[int], bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[int, bytes] | None:
    """Blocking-read one frame through a ``read(n) -> bytes`` callable.

    ``read`` may return fewer bytes than asked (like ``socket.recv``); it is
    called until the frame completes.  A clean end of stream *before* the
    first header byte returns ``None``; an end of stream mid-frame raises
    :class:`SerializationError` (the peer died mid-message).
    """
    frame = read_frame_versioned(read, max_bytes=max_bytes)
    if frame is None:
        return None
    kind, payload, _ = frame
    return kind, payload


def read_frame_versioned(
    read: Callable[[int], bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[int, bytes, int] | None:
    """:func:`read_frame` returning ``(kind, payload, header_version)``.

    The extra version element is what the worker's receive loop uses to cap
    its replies (and to decide whether the master understands coalesced
    :data:`FRAME_RESULT_BATCH` answers): the master stamps every outgoing
    frame at the connection's negotiated version.
    """

    def _read_exactly(n: int, *, at_message_boundary: bool) -> bytes | None:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = read(n - len(chunks))
            if not chunk:
                if not chunks and at_message_boundary:
                    return None
                raise SerializationError(
                    f"connection closed mid-frame ({len(chunks)} of {n} bytes)"
                )
            chunks.extend(chunk)
        return bytes(chunks)

    header = _read_exactly(FRAME_HEADER_BYTES, at_message_boundary=True)
    if header is None:
        return None
    version, kind, length = _decode_header_versioned(header, max_bytes=max_bytes)
    if length == 0:
        return kind, b"", version
    payload = _read_exactly(length, at_message_boundary=False)
    assert payload is not None
    return kind, payload, version


def auth_proof(secret: str | bytes, nonce: bytes) -> bytes:
    """HMAC-SHA256 proof of ``secret`` over a peer-supplied ``nonce``.

    Both handshake directions use this: the master proves itself over the
    worker's hello nonce, the worker answers over the master's challenge
    nonce.  Only the proofs cross the wire -- never the secret itself.
    """
    if isinstance(secret, str):
        secret = secret.encode("utf-8")
    return hmac.new(secret, bytes(nonce), hashlib.sha256).digest()


def verify_proof(secret: str | bytes, nonce: bytes, proof: object) -> bool:
    """Constant-time check of a peer's handshake ``proof``.

    ``hmac.compare_digest`` keeps the comparison timing-independent of how
    many leading bytes match, so a peer cannot binary-search the digest.
    """
    if not isinstance(proof, (bytes, bytearray)):
        return False
    return hmac.compare_digest(auth_proof(secret, nonce), bytes(proof))
