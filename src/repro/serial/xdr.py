"""XDR-style architecture-independent binary encoding.

The paper saves ``PremiaModel`` objects to files "relying on the XDR library
(eXternal Data Representation).  This way, any PremiaModel object can be
saved to a file in a format which is independent of the computer
architecture".  This module provides the same property for the Python
objects used by the benchmark: every value is written big-endian with
explicit type tags, so the byte stream does not depend on the host
architecture, and strings/byte blocks are padded to 4-byte boundaries as in
classic XDR.

Supported value types
---------------------
``None``, ``bool``, ``int`` (64-bit signed), ``float`` (IEEE-754 double),
``str``, ``bytes``, ``list``/``tuple``, ``dict`` with string keys, NumPy
arrays of float/int/bool dtypes, plus any class registered through
:func:`register_codec` (used for :class:`~repro.pricing.engine.PricingProblem`
and the portfolio objects).
"""

from __future__ import annotations

import struct
from typing import Any, Callable

import numpy as np

from repro.errors import SerializationError

__all__ = ["encode", "decode", "register_codec", "registered_type_names"]

# type tags -----------------------------------------------------------------
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STRING = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"H"  # "hash table", in Nsp parlance
_TAG_ARRAY = b"A"
_TAG_OBJECT = b"O"

_ARRAY_DTYPES: dict[str, np.dtype] = {
    "f8": np.dtype(">f8"),
    "i8": np.dtype(">i8"),
    "b1": np.dtype("bool"),
}

# object codec registry -------------------------------------------------------
_CODECS: dict[str, tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {}
_CLASS_TO_NAME: dict[type, str] = {}


def register_codec(
    type_name: str,
    cls: type,
    to_dict: Callable[[Any], dict],
    from_dict: Callable[[dict], Any],
) -> None:
    """Register an object codec.

    ``to_dict`` must produce a dictionary containing only XDR-encodable
    values; ``from_dict`` rebuilds the object.  Registering the same name
    twice overwrites the previous codec (useful in tests).
    """
    _CODECS[type_name] = (cls, to_dict, from_dict)
    _CLASS_TO_NAME[cls] = type_name


def registered_type_names() -> list[str]:
    """Names of all registered object codecs."""
    return sorted(_CODECS)


def _pad(data: bytes) -> bytes:
    """Pad to a 4-byte boundary, XDR style."""
    remainder = len(data) % 4
    if remainder:
        return data + b"\x00" * (4 - remainder)
    return data


def _encode_into(value: Any, chunks: list[bytes]) -> None:
    if value is None:
        chunks.append(_TAG_NONE)
    elif isinstance(value, bool):  # bool before int: bool is a subclass of int
        chunks.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, (int, np.integer)):
        ivalue = int(value)
        if not -(2**63) <= ivalue < 2**63:
            raise SerializationError(f"integer {ivalue} does not fit in 64 bits")
        chunks.append(_TAG_INT + struct.pack(">q", ivalue))
    elif isinstance(value, (float, np.floating)):
        chunks.append(_TAG_FLOAT + struct.pack(">d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        chunks.append(_TAG_STRING + struct.pack(">I", len(raw)) + _pad(raw))
    elif isinstance(value, (bytes, bytearray)):
        raw = bytes(value)
        chunks.append(_TAG_BYTES + struct.pack(">I", len(raw)) + _pad(raw))
    elif isinstance(value, (list, tuple)):
        chunks.append(_TAG_LIST + struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, chunks)
    elif isinstance(value, dict):
        chunks.append(_TAG_DICT + struct.pack(">I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dictionary keys must be strings, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            chunks.append(struct.pack(">I", len(raw)) + _pad(raw))
            _encode_into(item, chunks)
    elif isinstance(value, np.ndarray):
        _encode_array(value, chunks)
    elif type(value) in _CLASS_TO_NAME:
        type_name = _CLASS_TO_NAME[type(value)]
        _, to_dict, _ = _CODECS[type_name]
        raw_name = type_name.encode("utf-8")
        chunks.append(_TAG_OBJECT + struct.pack(">I", len(raw_name)) + _pad(raw_name))
        _encode_into(to_dict(value), chunks)
    else:
        # fall back to a registered codec for a parent class, if any
        for cls, type_name in _CLASS_TO_NAME.items():
            if isinstance(value, cls):
                _, to_dict, _ = _CODECS[type_name]
                raw_name = type_name.encode("utf-8")
                chunks.append(
                    _TAG_OBJECT + struct.pack(">I", len(raw_name)) + _pad(raw_name)
                )
                _encode_into(to_dict(value), chunks)
                return
        raise SerializationError(
            f"cannot encode value of unsupported type {type(value).__name__}"
        )


def _encode_array(value: np.ndarray, chunks: list[bytes]) -> None:
    if value.dtype.kind == "f":
        code, dtype = "f8", _ARRAY_DTYPES["f8"]
    elif value.dtype.kind in "iu":
        code, dtype = "i8", _ARRAY_DTYPES["i8"]
    elif value.dtype.kind == "b":
        code, dtype = "b1", _ARRAY_DTYPES["b1"]
    else:
        raise SerializationError(f"unsupported array dtype: {value.dtype}")
    data = np.ascontiguousarray(value, dtype=dtype).tobytes()
    header = (
        _TAG_ARRAY
        + code.encode("ascii")
        + struct.pack(">I", value.ndim)
        + b"".join(struct.pack(">I", int(dim)) for dim in value.shape)
        + struct.pack(">I", len(data))
    )
    chunks.append(header + _pad(data))


def encode(value: Any) -> bytes:
    """Encode ``value`` into an architecture-independent byte string."""
    chunks: list[bytes] = []
    _encode_into(value, chunks)
    return b"".join(chunks)


class _Reader:
    """Cursor over an encoded byte string."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerializationError("truncated XDR stream")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def take_padded(self, n: int) -> bytes:
        out = self.take(n)
        remainder = n % 4
        if remainder:
            self.take(4 - remainder)
        return out

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return struct.unpack(">q", reader.take(8))[0]
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STRING:
        length = reader.u32()
        return reader.take_padded(length).decode("utf-8")
    if tag == _TAG_BYTES:
        length = reader.u32()
        return reader.take_padded(length)
    if tag == _TAG_LIST:
        length = reader.u32()
        return [_decode_from(reader) for _ in range(length)]
    if tag == _TAG_DICT:
        length = reader.u32()
        out = {}
        for _ in range(length):
            key_len = reader.u32()
            key = reader.take_padded(key_len).decode("utf-8")
            out[key] = _decode_from(reader)
        return out
    if tag == _TAG_ARRAY:
        code = reader.take(2).decode("ascii")
        if code not in _ARRAY_DTYPES:
            raise SerializationError(f"unknown array dtype code {code!r}")
        ndim = reader.u32()
        shape = tuple(reader.u32() for _ in range(ndim))
        nbytes = reader.u32()
        raw = reader.take_padded(nbytes)
        arr = np.frombuffer(raw, dtype=_ARRAY_DTYPES[code]).reshape(shape)
        # convert back to native byte order
        return np.ascontiguousarray(arr, dtype=arr.dtype.newbyteorder("="))
    if tag == _TAG_OBJECT:
        name_len = reader.u32()
        type_name = reader.take_padded(name_len).decode("utf-8")
        if type_name not in _CODECS:
            raise SerializationError(f"no codec registered for object type {type_name!r}")
        _, _, from_dict = _CODECS[type_name]
        payload = _decode_from(reader)
        if not isinstance(payload, dict):
            raise SerializationError("object payload must decode to a dictionary")
        return from_dict(payload)
    raise SerializationError(f"unknown XDR tag {tag!r} at position {reader.pos - 1}")


def decode(data: bytes) -> Any:
    """Decode a byte string produced by :func:`encode`."""
    reader = _Reader(bytes(data))
    value = _decode_from(reader)
    if not reader.exhausted:
        raise SerializationError(
            f"trailing bytes after decoding ({len(data) - reader.pos} left)"
        )
    return value
