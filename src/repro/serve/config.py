"""Configuration of the ``repro-serve`` daemon.

One frozen :class:`ServerConfig` describes everything the daemon owns: the
listening socket, the warm execution backend it keeps across requests, the
shared cross-request result cache, and the multi-tenancy knobs (shared-secret
auth, per-client token-bucket rate limits).  The CLI (:mod:`repro.serve.app`)
is a thin argparse layer over this dataclass; tests and the docs build one
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["SERVABLE_BACKENDS", "ServerConfig"]

#: backends the daemon may own: every *executing* backend (the simulated
#: cluster prices nothing, so serving it would answer with empty results)
SERVABLE_BACKENDS = ("local", "sequential", "multiprocessing", "remote")


@dataclass(frozen=True)
class ServerConfig:
    """Everything one :class:`~repro.serve.app.ReproServer` needs.

    Parameters
    ----------
    host, port:
        Listening address; ``port=0`` binds an ephemeral port (read it back
        from ``ReproServer.port``).
    backend:
        Named execution backend the daemon keeps warm across requests --
        one of :data:`SERVABLE_BACKENDS`.
    n_workers:
        Worker count for the pooled backends; with ``backend="remote"`` and
        no explicit ``hosts`` the daemon spawns this many loopback
        ``repro-worker`` processes once at startup and reuses them for every
        campaign.
    hosts:
        Explicit ``"host:port"`` worker addresses for ``backend="remote"``;
        overrides the spawned loopback pool.
    cache_dir:
        Directory of the shared on-disk result cache.  ``None`` keeps the
        cache in memory only -- still shared across requests, gone on
        restart.
    cache_entries:
        Bound of the in-memory LRU of the shared cache.
    auth_token:
        Shared secret; when set, every data endpoint requires
        ``Authorization: Bearer <token>`` (or ``X-Auth-Token``).
        ``/healthz``, ``/v1/stats`` and the dashboard stay open.
    rate_limit:
        Sustained request rate (requests/second) allowed per client address
        on the pricing endpoints; ``0`` disables rate limiting.
    rate_burst:
        Token-bucket burst capacity per client.
    keepalive_interval:
        Seconds between liveness probes of idle remote workers
        (:func:`~repro.cluster.worker.probe_worker`); ``0`` disables the
        monitor.  Only meaningful with ``backend="remote"``.
    worker_secret:
        Shared secret of the protocol-v4 worker handshake.  When set, the
        daemon authenticates every remote worker connection
        (HMAC-SHA256 challenge/response) and passes the secret to the
        loopback pool it spawns.  Only meaningful with ``backend="remote"``;
        distinct from ``auth_token``, which protects the HTTP side.
    max_body_bytes:
        Refusal threshold for request bodies (HTTP 413 above it).
    max_events_per_job:
        Bound on the per-job progress-event buffer replayed to SSE clients.
    verbose:
        Log one line per HTTP request to stderr.
    """

    host: str = "127.0.0.1"
    port: int = 9632
    backend: str = "local"
    n_workers: int = 2
    hosts: tuple[str, ...] = ()
    cache_dir: str | None = None
    cache_entries: int = 4096
    auth_token: str | None = None
    rate_limit: float = 0.0
    rate_burst: int = 20
    keepalive_interval: float = 0.0
    worker_secret: str | None = None
    max_body_bytes: int = 8 * 1024 * 1024
    max_events_per_job: int = 10_000
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.backend not in SERVABLE_BACKENDS:
            raise ServeError(
                f"backend {self.backend!r} cannot be served; "
                f"choose one of {', '.join(SERVABLE_BACKENDS)}"
            )
        if self.n_workers < 1:
            raise ServeError("repro-serve needs n_workers >= 1")
        if self.hosts and self.backend != "remote":
            raise ServeError("explicit worker hosts need backend='remote'")
        if self.rate_limit < 0:
            raise ServeError("rate_limit must be >= 0 (0 disables limiting)")
        if self.rate_burst < 1:
            raise ServeError("rate_burst must be >= 1")
        if self.keepalive_interval < 0:
            raise ServeError("keepalive_interval must be >= 0 (0 disables it)")
        if self.worker_secret is not None and self.backend != "remote":
            raise ServeError("worker_secret needs backend='remote'")
        object.__setattr__(self, "hosts", tuple(self.hosts))
