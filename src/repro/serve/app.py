"""HTTP surface of ``repro-serve``: routing, auth, SSE, CLI entry point.

One :class:`ThreadingHTTPServer` front-ends one
:class:`~repro.serve.service.PricingService`.  The handler is a deliberately
thin shell: it parses a request, applies the multi-tenancy guards (shared
secret, per-client token bucket), delegates to the service, and maps the
library's exception taxonomy onto HTTP status codes.  Endpoints:

====================================  =====================================
``GET  /``                            live dashboard (HTML, no auth)
``GET  /healthz``                     liveness/degradation probe (no auth)
``GET  /v1/stats``                    counters + cache + workers (no auth)
``POST /v1/price``                    one problem, cache-first, synchronous
``POST /v1/greeks``                   full Greek ladder (CRN scenario grid)
``POST /v1/run``                      enqueue a portfolio run (``wait`` opt)
``GET  /v1/jobs/{id}``                job snapshot with result
``POST /v1/jobs/{id}/cancel``         withdraw / cancel a run
``GET  /v1/stream/{id}``              SSE replay + follow of run progress
``POST /v1/shutdown``                 clean remote stop
====================================  =====================================

Responses use HTTP/1.0 semantics (the connection closes after each
response), which makes the SSE stream self-delimiting: the client reads
events until EOF, which arrives right after the terminal event.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import (
    PortfolioError,
    PricingError,
    RegistryError,
    SchedulingError,
    ServeError,
    ValuationError,
)
from repro.serve.auth import RateLimiter, token_matches
from repro.serve.config import ServerConfig
from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.service import PricingService
from repro.serve.sse import format_sse

__all__ = ["ReproServer", "build_parser", "main"]

#: exception types a request body can legitimately trigger -> HTTP 400
_BAD_REQUEST_ERRORS = (
    ServeError,
    RegistryError,
    PricingError,
    ValuationError,
    PortfolioError,
    SchedulingError,
)

_AUTH_EXEMPT = {"/", "/healthz", "/v1/stats"}


class _PayloadTooLarge(Exception):
    """Body over ``max_body_bytes`` -> HTTP 413 (not a plain bad request)."""


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server.service``."""

    server_version = "repro-serve"
    # Each response closes its connection; SSE relies on that to delimit
    # the event stream without chunked encoding.
    protocol_version = "HTTP/1.0"

    # -- plumbing -------------------------------------------------------------
    @property
    def service(self) -> PricingService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def limiter(self) -> RateLimiter:
        return self.server.limiter  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.service.config.verbose:
            super().log_message(format, *args)

    def _path_only(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def _send_json(self, status: int, payload: Any, **headers: str) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **headers: str) -> None:
        self._send_json(status, {"error": message}, **headers)

    def _presented_token(self) -> str | None:
        auth = self.headers.get("Authorization")
        if auth and auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return self.headers.get("X-Auth-Token")

    def _authorized(self, path: str) -> bool:
        if path in _AUTH_EXEMPT:
            return True
        if token_matches(self.service.config.auth_token, self._presented_token()):
            return True
        self.service.count("auth_failures")
        self._error(401, "missing or invalid auth token")
        return False

    def _rate_limited(self) -> bool:
        allowed, retry_after = self.limiter.allow(self.client_address[0])
        if allowed:
            return False
        self.service.count("rate_limited")
        self._error(429, "rate limit exceeded", Retry_After=f"{retry_after:.3f}")
        return True

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.service.config.max_body_bytes} byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from None

    # -- verbs ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self._path_only()
        self.service.count("requests")
        if not self._authorized(path):
            return
        try:
            if path == "/":
                body = DASHBOARD_HTML.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif path == "/healthz":
                self._send_json(200, self.service.healthz())
            elif path == "/v1/stats":
                self._send_json(200, self.service.stats())
            elif path.startswith("/v1/jobs/"):
                self._get_job(path.removeprefix("/v1/jobs/"))
            elif path.startswith("/v1/stream/"):
                self._stream_job(path.removeprefix("/v1/stream/"))
            else:
                self._error(404, f"no such endpoint: {path}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # noqa: BLE001 - a handler must not kill the server
            self._safe_500(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self._path_only()
        self.service.count("requests")
        if not self._authorized(path):
            return
        if path in ("/v1/price", "/v1/greeks", "/v1/run") and self._rate_limited():
            return
        try:
            if path == "/v1/price":
                self._send_json(200, self.service.price_single(self._read_body()))
            elif path == "/v1/greeks":
                self._send_json(200, self.service.greeks_single(self._read_body()))
            elif path == "/v1/run":
                self._submit_run()
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path.removeprefix("/v1/jobs/").removesuffix("/cancel")
                record = self.service.cancel_job(job_id)
                if record is None:
                    self._error(404, f"unknown job: {job_id}")
                else:
                    self._send_json(200, record.snapshot(include_result=False))
            elif path == "/v1/shutdown":
                self._send_json(200, {"status": "stopping"})
                self.server.request_stop()  # type: ignore[attr-defined]
            else:
                self._error(404, f"no such endpoint: {path}")
        except _PayloadTooLarge as exc:
            self._error(413, str(exc))
        except _BAD_REQUEST_ERRORS as exc:
            self._error(400, str(exc))
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 - a handler must not kill the server
            self._safe_500(exc)

    def _safe_500(self, exc: Exception) -> None:
        try:
            self._error(500, f"{type(exc).__name__}: {exc}")
        except OSError:
            pass

    # -- endpoint bodies ------------------------------------------------------
    def _submit_run(self) -> None:
        body = self._read_body()
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        record = self.service.submit_run(body)
        if body.get("wait"):
            timeout = float(body.get("timeout", 300.0))
            if not record.wait_terminal(timeout=timeout):
                self._send_json(202, record.snapshot(include_result=False))
                return
        self._send_json(202 if not record.terminal else 200, record.snapshot())

    def _get_job(self, job_id: str) -> None:
        record = self.service.jobs.get(job_id)
        if record is None:
            self._error(404, f"unknown job: {job_id}")
        else:
            self._send_json(200, record.snapshot())

    def _stream_job(self, job_id: str) -> None:
        record = self.service.jobs.get(job_id)
        if record is None:
            self._error(404, f"unknown job: {job_id}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        cursor = 0
        try:
            while True:
                # sample the state BEFORE draining: progress events precede
                # the terminal transition, so a True flag here guarantees the
                # drain below saw every tick the run will ever produce
                finished = record.terminal
                events, cursor = record.events_since(cursor)
                for offset, event in enumerate(events, start=cursor - len(events)):
                    self.wfile.write(
                        format_sse(event, event="progress", event_id=offset)
                    )
                if finished:
                    # one final event named after the job's resting state
                    self.wfile.write(
                        format_sse(
                            record.snapshot(include_result=False),
                            event=record.state,
                        )
                    )
                    self.wfile.flush()
                    return
                self.wfile.flush()
                record.wait_event(cursor, timeout=1.0)
        except (BrokenPipeError, ConnectionResetError):
            pass  # streamer disconnected; the job runs on


class ReproServer:
    """The bound daemon: HTTP server + pricing service, one object.

    Construction binds the socket (so ``port=0`` resolves to a real
    ephemeral port immediately); :meth:`start` warms the backend and serves
    in a daemon thread, :meth:`serve_forever` does the same in the calling
    thread.  Either way :meth:`stop` is idempotent and tears down both the
    HTTP side and the worker pool.
    """

    def __init__(self, config: ServerConfig | None = None, **overrides: Any):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ServeError("pass either a ServerConfig or keyword overrides")
        self.config = config
        self.service = PricingService(config)
        self._httpd = ThreadingHTTPServer((config.host, config.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.limiter = RateLimiter(  # type: ignore[attr-defined]
            config.rate_limit, config.rate_burst
        )
        self._httpd.request_stop = self._request_stop  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._serving = threading.Event()
        self._stopped = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _serve(self) -> None:
        self._serving.set()
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ReproServer":
        """Warm the backend and serve in a background thread."""
        if self._thread is None:
            self.service.start()
            self._thread = threading.Thread(
                target=self._serve, name="repro-serve-http", daemon=True
            )
            self._thread.start()
            self._serving.wait(timeout=5.0)
        return self

    def serve_forever(self) -> None:
        """Warm the backend and serve in the calling thread (CLI mode)."""
        self.service.start()
        self._serve()

    def _request_stop(self) -> None:
        # shutdown() must come from another thread -- it blocks until the
        # serve_forever loop (which is busy answering us) notices.
        threading.Thread(target=self.stop, name="repro-serve-stop", daemon=True).start()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._serving.is_set():
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.service.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived pricing daemon: warm backend, shared result "
        "cache, HTTP + SSE API, live dashboard.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9632, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--backend",
        default="local",
        help="execution backend: local, sequential, multiprocessing or remote",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker count (spawned backends)"
    )
    parser.add_argument(
        "--hosts",
        default=None,
        help="comma-separated host:port list of running repro-worker processes "
        "(remote backend; omit to spawn a loopback pool)",
    )
    parser.add_argument("--cache-dir", default=None, help="on-disk result cache")
    parser.add_argument(
        "--cache-entries", type=int, default=4096, help="in-memory cache bound"
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="shared secret required on API requests "
        "(default: $REPRO_SERVE_TOKEN if set)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-client requests/second on pricing endpoints (0 disables)",
    )
    parser.add_argument(
        "--rate-burst", type=int, default=20, help="token-bucket burst capacity"
    )
    parser.add_argument(
        "--keepalive",
        type=float,
        default=0.0,
        help="seconds between idle PING probes of remote workers (0 disables)",
    )
    parser.add_argument(
        "--worker-secret",
        default=None,
        help="shared secret of the worker handshake (remote backend; "
        "default: $REPRO_WORKER_SECRET if set)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        n_workers=args.workers,
        hosts=tuple(h.strip() for h in args.hosts.split(",")) if args.hosts else (),
        cache_dir=args.cache_dir,
        cache_entries=args.cache_entries,
        auth_token=args.auth_token or os.environ.get("REPRO_SERVE_TOKEN") or None,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        keepalive_interval=args.keepalive,
        worker_secret=(
            args.worker_secret or os.environ.get("REPRO_WORKER_SECRET") or None
        )
        if args.backend == "remote"
        else None,
        verbose=args.verbose,
    )
    server = ReproServer(config)
    print(f"repro-serve listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
