"""Thread-safe job table of the ``repro-serve`` daemon.

Every ``POST /v1/run`` becomes one :class:`JobRecord`: a queued portfolio
campaign with its own priority, cancel token and progress-event buffer.  The
record is the meeting point of three threads -- the HTTP handler that created
it, the single executor thread that runs it, and any number of SSE streamers
replaying its progress -- so all mutation goes through the record's condition
variable, and SSE followers block on :meth:`JobRecord.wait_event` instead of
polling.

States move ``queued -> running -> done | failed | cancelled`` (a queued job
may jump straight to ``cancelled``).  The futures layer maps directly onto
async request handling: the executor drives ``session.run`` with a progress
callback, each :class:`~repro.api.futures.StreamProgress` tick lands here as
one replayable event, and ``GET /v1/jobs/{id}`` is a snapshot of the record.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.api.futures import CancelToken, StreamProgress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.portfolio import Portfolio

__all__ = ["JobRecord", "JobTable", "JOB_STATES", "TERMINAL_STATES"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def progress_event(tick: StreamProgress) -> dict[str, Any]:
    """The JSON shape of one StreamProgress tick on the SSE wire."""
    return {
        "done": tick.done,
        "total": tick.total,
        "job_id": tick.job_id,
        "label": tick.label,
        "price": tick.result.price if tick.result is not None else None,
        "error": tick.error,
        "cancelled": tick.cancelled,
    }


class JobRecord:
    """One submitted portfolio run and everything observable about it."""

    def __init__(
        self,
        job_id: str,
        portfolio: "Portfolio",
        *,
        priority: float = 0.0,
        priorities: dict[int, float] | None = None,
        batch: bool = False,
        max_events: int = 10_000,
    ):
        self.id = job_id
        self.portfolio = portfolio
        self.total = len(portfolio)
        self.priority = float(priority)
        #: per-position priorities (job index -> priority) for PriorityScheduler
        self.priorities = dict(priorities) if priorities else None
        self.batch = bool(batch)
        self.cancel = CancelToken()
        self.state = "queued"
        self.error: str | None = None
        self.result: dict[str, Any] | None = None
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.n_done = 0
        self._events: list[dict[str, Any]] = []
        self._dropped_events = 0
        self._max_events = max_events
        self._cond = threading.Condition()

    # -- state transitions (executor / cancel endpoint) ---------------------------
    def mark_running(self) -> None:
        with self._cond:
            self.state = "running"
            self.started_at = time.time()
            self._cond.notify_all()

    def finish(self, result: dict[str, Any], *, cancelled: bool = False) -> None:
        with self._cond:
            self.result = result
            self.state = "cancelled" if cancelled else "done"
            self.finished_at = time.time()
            self._cond.notify_all()

    def fail(self, error: str) -> None:
        with self._cond:
            self.error = error
            self.state = "failed"
            self.finished_at = time.time()
            self._cond.notify_all()

    def mark_cancelled(self) -> None:
        """Cancellation of a job that never started (withdrawn while queued)."""
        with self._cond:
            if self.state == "queued":
                self.state = "cancelled"
                self.finished_at = time.time()
                self._cond.notify_all()

    # -- progress events (executor -> SSE streamers) ------------------------------
    def add_progress(self, tick: StreamProgress) -> None:
        event = progress_event(tick)
        with self._cond:
            self.n_done = max(self.n_done, tick.done)
            if len(self._events) >= self._max_events:
                # keep the newest ticks; SSE replay notes the gap
                del self._events[0]
                self._dropped_events += 1
            self._events.append(event)
            self._cond.notify_all()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def events_since(self, index: int) -> tuple[list[dict[str, Any]], int]:
        """Events not yet seen by a streamer holding cursor ``index``.

        Returns ``(events, next_index)``; a cursor older than the ring's
        oldest retained event skips the dropped span.
        """
        with self._cond:
            offset = max(index - self._dropped_events, 0)
            fresh = list(self._events[offset:])
            return fresh, self._dropped_events + len(self._events)

    def wait_event(self, index: int, timeout: float = 1.0) -> bool:
        """Block until an event past ``index`` exists or the job is terminal."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.terminal or self._dropped_events + len(self._events) > index,
                timeout=timeout,
            )

    def wait_terminal(self, timeout: float | None = None) -> bool:
        with self._cond:
            return self._cond.wait_for(lambda: self.terminal, timeout=timeout)

    # -- snapshots (GET /v1/jobs/{id}) ---------------------------------------------
    def snapshot(self, *, include_result: bool = True) -> dict[str, Any]:
        with self._cond:
            view: dict[str, Any] = {
                "job": self.id,
                "state": self.state,
                "priority": self.priority,
                "total": self.total,
                "done": self.n_done,
                "batch": self.batch,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
            }
            if include_result:
                view["result"] = self.result
            return view


class JobTable:
    """Id-keyed registry of every job the daemon has seen."""

    def __init__(self, *, max_events_per_job: int = 10_000):
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._seq = 0
        self._max_events = max_events_per_job

    def create(
        self,
        portfolio: "Portfolio",
        *,
        priority: float = 0.0,
        priorities: dict[int, float] | None = None,
        batch: bool = False,
    ) -> JobRecord:
        with self._lock:
            self._seq += 1
            job_id = f"{self._seq:06d}-{secrets.token_hex(4)}"
            record = JobRecord(
                job_id,
                portfolio,
                priority=priority,
                priorities=priorities,
                batch=batch,
                max_events=self._max_events,
            )
            self._records[job_id] = record
            self._order.append(job_id)
            return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def counts(self) -> dict[str, int]:
        """How many jobs sit in each state (every state always present)."""
        with self._lock:
            records = list(self._records.values())
        counts = {state: 0 for state in JOB_STATES}
        for record in records:
            counts[record.state] += 1
        return counts

    def recent(self, n: int = 20) -> list[dict[str, Any]]:
        """Snapshots of the ``n`` most recent jobs, newest first (no results)."""
        with self._lock:
            newest = [self._records[job_id] for job_id in self._order[-n:]]
        return [record.snapshot(include_result=False) for record in reversed(newest)]
