"""``python -m repro.serve`` -- the uninstalled spelling of ``repro-serve``."""

import sys

from repro.serve.app import main

sys.exit(main())
