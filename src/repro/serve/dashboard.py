"""The daemon's monitoring page: one self-contained HTML string.

Served at ``/``; polls ``GET /v1/stats`` every two seconds with ``fetch``
and re-renders in place -- no build step, no external assets, works with the
shared-secret auth enabled because the stats endpoint is deliberately open
(it exposes counters, never prices or request bodies).

Presentation choices follow the house dataviz rules: headline figures are
stat tiles (a number's job is to be read, not charted), per-worker
utilization is a magnitude and gets a single-hue bar, job states are shown
as a label next to a colored dot (never color alone), and all text wears
ink tokens rather than series colors.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro-serve</title>
<style>
  :root {
    --ink: #1f2430; --ink-2: #5b6372; --ink-3: #8a92a3;
    --surface: #ffffff; --surface-2: #f4f5f7; --line: #e3e6ea;
    --accent: #3566b0; --accent-soft: #d7e2f2;
    --good: #2e7d4f; --warn: #b3700e; --bad: #b3392e;
  }
  * { box-sizing: border-box; }
  body { margin: 0; background: var(--surface-2); color: var(--ink);
         font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
  header { display: flex; align-items: baseline; gap: 12px;
           padding: 14px 22px; background: var(--surface);
           border-bottom: 1px solid var(--line); }
  header h1 { font-size: 16px; margin: 0; font-weight: 650; }
  header .sub { color: var(--ink-2); font-size: 13px; }
  main { padding: 18px 22px; max-width: 1080px; margin: 0 auto; }
  .tiles { display: grid; gap: 12px;
           grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); }
  .tile { background: var(--surface); border: 1px solid var(--line);
          border-radius: 8px; padding: 12px 14px; }
  .tile .label { color: var(--ink-2); font-size: 12px; letter-spacing: .02em;
                 text-transform: uppercase; }
  .tile .value { font-size: 26px; font-weight: 650; font-variant-numeric: tabular-nums; }
  .tile .hint { color: var(--ink-3); font-size: 12px; }
  section { margin-top: 20px; }
  section h2 { font-size: 13px; color: var(--ink-2); text-transform: uppercase;
               letter-spacing: .04em; margin: 0 0 8px; font-weight: 600; }
  .card { background: var(--surface); border: 1px solid var(--line);
          border-radius: 8px; padding: 12px 14px; }
  .bar-row { display: grid; grid-template-columns: minmax(120px, 220px) 1fr 64px;
             gap: 10px; align-items: center; padding: 3px 0; }
  .bar-row .name { color: var(--ink-2); font-variant-numeric: tabular-nums;
                   overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .bar-track { height: 8px; background: var(--accent-soft); border-radius: 4px; }
  .bar-fill { height: 8px; background: var(--accent); border-radius: 4px;
              min-width: 2px; transition: width .4s; }
  .bar-row .pct { text-align: right; font-variant-numeric: tabular-nums;
                  color: var(--ink-2); }
  table { width: 100%; border-collapse: collapse; font-variant-numeric: tabular-nums; }
  th { text-align: left; color: var(--ink-2); font-weight: 600; font-size: 12px;
       text-transform: uppercase; letter-spacing: .03em;
       border-bottom: 1px solid var(--line); padding: 6px 8px; }
  td { padding: 6px 8px; border-bottom: 1px solid var(--surface-2); }
  .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
         margin-right: 6px; vertical-align: 1px; background: var(--ink-3); }
  .state-done .dot { background: var(--good); }
  .state-running .dot { background: var(--accent); }
  .state-queued .dot { background: var(--ink-3); }
  .state-failed .dot { background: var(--bad); }
  .state-cancelled .dot { background: var(--warn); }
  .muted { color: var(--ink-3); }
  #error { display: none; margin-top: 12px; color: var(--bad); }
</style>
</head>
<body>
<header>
  <h1>repro-serve</h1>
  <span class="sub" id="meta">connecting&hellip;</span>
</header>
<main>
  <div class="tiles">
    <div class="tile"><div class="label">Uptime</div>
      <div class="value" id="uptime">&ndash;</div></div>
    <div class="tile"><div class="label">Queue depth</div>
      <div class="value" id="queue">&ndash;</div>
      <div class="hint" id="running"></div></div>
    <div class="tile"><div class="label">Runs completed</div>
      <div class="value" id="done">&ndash;</div>
      <div class="hint" id="done-detail"></div></div>
    <div class="tile"><div class="label">Cache hit rate</div>
      <div class="value" id="hitrate">&ndash;</div>
      <div class="hint" id="cache-detail"></div></div>
  </div>
  <section>
    <h2>Worker utilization <span class="muted">(busy seconds / campaign wall seconds)</span></h2>
    <div class="card" id="workers"><span class="muted">no campaigns yet</span></div>
  </section>
  <section>
    <h2>Recent jobs</h2>
    <div class="card">
      <table>
        <thead><tr><th>Job</th><th>State</th><th>Progress</th>
                   <th>Priority</th><th>Error</th></tr></thead>
        <tbody id="jobs"><tr><td colspan="5" class="muted">none yet</td></tr></tbody>
      </table>
    </div>
  </section>
  <p id="error">stats unreachable &mdash; retrying&hellip;</p>
</main>
<script>
"use strict";
const fmtDur = (s) => {
  s = Math.floor(s);
  if (s < 60) return s + "s";
  if (s < 3600) return Math.floor(s / 60) + "m " + (s % 60) + "s";
  return Math.floor(s / 3600) + "h " + Math.floor((s % 3600) / 60) + "m";
};
const esc = (t) => String(t).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
function render(s) {
  document.getElementById("meta").textContent =
    s.backend + " backend \\u00b7 " + s.n_workers + " workers";
  document.getElementById("uptime").textContent = fmtDur(s.uptime_s);
  document.getElementById("queue").textContent = s.queue_depth;
  document.getElementById("running").textContent =
    s.running_job ? "running " + s.running_job : "idle";
  document.getElementById("done").textContent = s.jobs.done;
  document.getElementById("done-detail").textContent =
    s.jobs.failed + " failed \\u00b7 " + s.jobs.cancelled + " cancelled";
  document.getElementById("hitrate").textContent =
    Math.round(s.cache.hit_rate * 100) + "%";
  document.getElementById("cache-detail").textContent =
    s.cache.hits + " hits \\u00b7 " + s.cache.misses + " misses \\u00b7 " +
    s.cache.evictions + " evicted \\u00b7 " + s.cache.corrupt + " corrupt";
  const names = Object.keys(s.workers.utilization).sort();
  const workers = document.getElementById("workers");
  if (names.length === 0) {
    workers.innerHTML = '<span class="muted">no campaigns yet</span>';
  } else {
    workers.innerHTML = names.map((name) => {
      const u = s.workers.utilization[name];
      const dead = s.workers.dead.indexOf(name) >= 0;
      const pct = Math.max(0, Math.min(100, Math.round(u * 100)));
      return '<div class="bar-row"><span class="name">' + esc(name) +
        (dead ? ' <span class="muted">(dead)</span>' : "") + "</span>" +
        '<div class="bar-track"><div class="bar-fill" style="width:' +
        pct + '%"></div></div><span class="pct">' + pct + "%</span></div>";
    }).join("");
  }
  const body = document.getElementById("jobs");
  if (!s.recent_jobs || s.recent_jobs.length === 0) {
    body.innerHTML = '<tr><td colspan="5" class="muted">none yet</td></tr>';
  } else {
    body.innerHTML = s.recent_jobs.map((j) =>
      '<tr class="state-' + esc(j.state) + '"><td>' + esc(j.job) +
      '</td><td><span class="dot"></span>' + esc(j.state) +
      "</td><td>" + j.done + " / " + j.total +
      "</td><td>" + j.priority +
      '</td><td class="muted">' + (j.error ? esc(j.error) : "") +
      "</td></tr>").join("");
  }
}
async function tick() {
  try {
    const response = await fetch("/v1/stats", {cache: "no-store"});
    if (!response.ok) throw new Error(response.status);
    render(await response.json());
    document.getElementById("error").style.display = "none";
  } catch (err) {
    document.getElementById("error").style.display = "block";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
