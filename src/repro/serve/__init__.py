"""``repro-serve``: the pricing cluster as a long-lived HTTP service.

The paper's runtime amortizes cluster spin-up across one portfolio; this
subsystem amortizes it across arbitrarily many clients.  A daemon owns a
warm execution backend and a shared :class:`~repro.pricing.cache.ResultCache`
and exposes pricing over plain HTTP: synchronous single-problem quotes,
queued portfolio runs with cross-request priorities, server-sent-event
progress streams, and a live monitoring dashboard.

Programmatic use mirrors the CLI::

    from repro.serve import ReproServer

    with ReproServer(port=0, backend="local", n_workers=2) as server:
        ...  # POST {server.url}/v1/run, stream /v1/stream/{id}

Everything is standard library on top of the existing repro stack -- see
:mod:`repro.serve.app` for the endpoint table and :doc:`docs/serving.md`
for the wire contract.
"""

from repro.serve.app import ReproServer, main
from repro.serve.config import SERVABLE_BACKENDS, ServerConfig
from repro.serve.service import PricingService

__all__ = [
    "ReproServer",
    "PricingService",
    "ServerConfig",
    "SERVABLE_BACKENDS",
    "main",
]
