"""Request-body parsing: JSON dictionaries -> pricing objects.

The HTTP surface speaks the same Premia-style vocabulary as
``ValuationSession.price`` -- registry names plus parameter mappings -- so a
request body is a direct JSON spelling of a :class:`PricingProblem`:

.. code-block:: text

    {"model": "BlackScholes1D", "model_params": {"spot": 100.0, ...},
     "option": "CallEuro",      "option_params": {"strike": 100.0, ...},
     "method": "CF_Call",       "method_params": {},
     "label": "atm_call"}

and a run body is a list of positions of the same shape plus portfolio
fields (``quantity``, ``category``, ``priority``).  Registry validation
happens inside ``set_model``/``set_option``/``set_method``; anything invalid
raises (and surfaces to the client as HTTP 400) before a job is enqueued.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.portfolio import Portfolio, Position
from repro.errors import ServeError
from repro.pricing import PricingProblem

__all__ = ["problem_from_request", "portfolio_from_request"]

_PROBLEM_KEYS = ("model", "option", "method")


def _params(body: Mapping[str, Any], key: str) -> dict[str, Any]:
    params = body.get(key) or {}
    if not isinstance(params, Mapping):
        raise ServeError(f"{key!r} must be a JSON object of parameters")
    return dict(params)


def problem_from_request(body: Mapping[str, Any]) -> PricingProblem:
    """Build one fully-specified :class:`PricingProblem` from a JSON body."""
    if not isinstance(body, Mapping):
        raise ServeError("request body must be a JSON object")
    missing = [key for key in _PROBLEM_KEYS if not body.get(key)]
    if missing:
        raise ServeError(f"request is missing {', '.join(missing)}")
    problem = PricingProblem(label=body.get("label"))
    problem.set_asset(str(body.get("asset", "equity")))
    problem.set_model(str(body["model"]), **_params(body, "model_params"))
    problem.set_option(str(body["option"]), **_params(body, "option_params"))
    problem.set_method(str(body["method"]), **_params(body, "method_params"))
    return problem


def portfolio_from_request(
    body: Mapping[str, Any],
) -> tuple[Portfolio, dict[int, float] | None]:
    """Build a :class:`Portfolio` plus optional per-position priorities.

    The body's ``positions`` list maps one entry to one
    :class:`~repro.core.portfolio.Position`, in submission order -- position
    index *is* the scheduler job id, so the returned priority mapping plugs
    straight into :class:`~repro.core.scheduler.PriorityScheduler`.  The
    mapping is ``None`` when no position names a priority.
    """
    if not isinstance(body, Mapping):
        raise ServeError("request body must be a JSON object")
    entries = body.get("positions")
    if not isinstance(entries, (list, tuple)) or not entries:
        raise ServeError("a run request needs a non-empty 'positions' list")
    portfolio = Portfolio(name=str(body.get("name", "request")))
    priorities: dict[int, float] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ServeError(f"positions[{index}] must be a JSON object")
        try:
            problem = problem_from_request(entry)
        except ServeError as exc:
            raise ServeError(f"positions[{index}]: {exc}") from None
        label = entry.get("label") or problem.label or f"pos_{index}"
        portfolio.add(
            Position(
                problem=problem,
                quantity=float(entry.get("quantity", 1.0)),
                category=str(entry.get("category", "generic")),
                label=str(label),
            )
        )
        if entry.get("priority") is not None:
            priorities[index] = float(entry["priority"])
    return portfolio, (priorities or None)
