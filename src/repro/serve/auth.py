"""Multi-tenancy guards of the daemon: shared-secret auth and rate limits.

Both are deliberately boring, stdlib-only mechanisms:

* :func:`token_matches` compares the configured shared secret against the
  ``Authorization: Bearer ...`` / ``X-Auth-Token`` header value in constant
  time (``hmac.compare_digest``);
* :class:`RateLimiter` keeps one token bucket per client address: ``rate``
  tokens per second refill up to a ``burst`` capacity, one request spends
  one token, an empty bucket means HTTP 429 with a ``Retry-After`` hint.
"""

from __future__ import annotations

import hmac
import threading
import time

__all__ = ["token_matches", "TokenBucket", "RateLimiter"]


def token_matches(expected: str | None, presented: str | None) -> bool:
    """Whether a presented secret grants access (constant-time compare).

    ``expected is None`` means auth is disabled: everything is allowed.
    """
    if expected is None:
        return True
    if not presented:
        return False
    return hmac.compare_digest(expected.encode(), presented.encode())


class TokenBucket:
    """One client's budget: ``rate`` tokens/second up to ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def allow(self, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (advisory ``Retry-After``)."""
        missing = 1.0 - self.tokens
        return max(missing / self.rate, 0.0) if self.rate > 0 else 1.0


class RateLimiter:
    """Per-client token buckets behind one lock.

    ``rate <= 0`` disables limiting entirely (every ``allow`` succeeds).
    The bucket table is pruned opportunistically: entries idle long enough
    to have refilled to full capacity carry no state worth keeping.
    """

    def __init__(self, rate: float, burst: int = 20, *, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> tuple[bool, float]:
        """``(allowed, retry_after_seconds)`` for one request by ``client``."""
        if not self.enabled:
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, now)
                if len(self._buckets) > 4096:
                    self._prune(now)
            if bucket.allow(now):
                return True, 0.0
            return False, bucket.retry_after()

    def _prune(self, now: float) -> None:
        full_after = self.burst / self.rate
        for client, bucket in list(self._buckets.items()):
            if now - bucket.updated > full_after:
                del self._buckets[client]

    def n_clients(self) -> int:
        with self._lock:
            return len(self._buckets)
