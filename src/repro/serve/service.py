"""The warm core of ``repro-serve``: one backend, one cache, many requests.

The paper's master amortizes cluster setup across a whole portfolio; this
service amortizes it across *requests*.  It owns

* a named execution backend kept warm for the daemon's lifetime -- for
  ``backend="remote"`` that is a pool of ``repro-worker`` processes (spawned
  loopback or user-listed hosts) whose accept loops survive between
  campaigns, so a request only pays a TCP connect, never a process spawn;
* one shared :class:`~repro.pricing.cache.ResultCache` (thread-safe, optional
  disk store) that every request reads and feeds -- the second identical
  request never touches a worker;
* a single executor thread draining a priority queue of submitted runs
  (cross-request ordering), each run driven through a fresh
  :class:`~repro.api.session.ValuationSession` whose per-position priorities
  ride the :class:`~repro.core.scheduler.PriorityScheduler` policy
  (within-request ordering);
* an optional keepalive monitor that pings idle remote workers
  (:func:`~repro.cluster.worker.probe_worker`, protocol v3) so dead TCP
  endpoints are noticed between campaigns, not at next dispatch.

The HTTP layer (:mod:`repro.serve.app`) is a thin routing shell over this
object; everything observable lands in :meth:`PricingService.stats`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Mapping

from repro.api.session import ValuationSession
from repro.core.scheduler import PriorityScheduler, Scheduler
from repro.errors import ReproError, ServeError
from repro.pricing.cache import ResultCache, problem_digest
from repro.pricing.greeks import compute_greeks
from repro.serve.config import ServerConfig
from repro.serve.jobs import JobRecord, JobTable
from repro.serve.parse import portfolio_from_request, problem_from_request

__all__ = ["PricingService"]


class PricingService:
    """Everything the daemon does between accepting and answering HTTP."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.cache = ResultCache(
            max_entries=config.cache_entries, directory=config.cache_dir
        )
        self.jobs = JobTable(max_events_per_job=config.max_events_per_job)
        self._queue: list[tuple[float, int, str]] = []
        self._queue_cond = threading.Condition()
        self._ticket = itertools.count()
        self._stop = threading.Event()
        self._executor: threading.Thread | None = None
        self._monitor: threading.Thread | None = None
        self._pool: Any = None
        self._hosts: tuple[str, ...] = tuple(config.hosts)
        self._state_lock = threading.Lock()
        self._dead_hosts: set[str] = set()
        self._running_job: str | None = None
        self._busy_s: dict[str, float] = {}
        self._campaign_wall_s = 0.0
        self._counters = {
            "requests": 0,
            "auth_failures": 0,
            "rate_limited": 0,
            "priced_singles": 0,
            "greek_ladders": 0,
            "runs_submitted": 0,
            "runs_completed": 0,
            "runs_failed": 0,
            "runs_cancelled": 0,
            "cache_only_runs": 0,
            "reconnects": 0,
            "redispatches": 0,
        }
        self._started_monotonic = time.monotonic()

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Warm the backend and start the executor (idempotent)."""
        if self._executor is not None:
            return
        if self.config.backend == "remote" and not self._hosts:
            from repro.cluster.worker import spawn_local_workers

            self._pool = spawn_local_workers(
                self.config.n_workers,
                cache_dir=self.config.cache_dir,
                secret=self.config.worker_secret,
            )
            self._hosts = tuple(self._pool.hosts)
        self._executor = threading.Thread(
            target=self._executor_loop, name="repro-serve-executor", daemon=True
        )
        self._executor.start()
        if self.config.backend == "remote" and self.config.keepalive_interval > 0:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-serve-keepalive", daemon=True
            )
            self._monitor.start()

    def close(self) -> None:
        """Stop the executor and tear the warm pool down."""
        self._stop.set()
        with self._queue_cond:
            self._queue_cond.notify_all()
        for thread in (self._executor, self._monitor):
            if thread is not None:
                thread.join(timeout=10.0)
        if self._pool is not None:
            self._pool.stop()
            self._pool = None

    def count(self, name: str, delta: int = 1) -> None:
        with self._state_lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    # -- single-problem pricing (POST /v1/price) -------------------------------------
    def price_single(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """Price one problem cache-first, in the calling (HTTP) thread."""
        problem = problem_from_request(body)
        digest = problem_digest(problem)
        started = time.perf_counter()
        result = self.cache.get(digest)
        cache_hit = result is not None
        if result is None:
            result = problem.compute()
            self.cache.put(digest, result)
        self.count("priced_singles")
        return {
            "price": result.price,
            "std_error": result.std_error,
            "delta": result.delta,
            "label": problem.label,
            "method": problem.method_name,
            "digest": digest,
            "cache_hit": cache_hit,
            "elapsed_s": time.perf_counter() - started,
        }

    # -- greek ladders (POST /v1/greeks) ----------------------------------------------
    def greeks_single(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """Full finite-difference Greek ladder for one problem, CRN-batched.

        The default ``engine="batched"`` expands the problem into a common-
        random-number scenario grid (:mod:`repro.pricing.scenarios`) and
        prices the whole ladder through the stacked kernel; ``engine=
        "serial"`` runs the bump-and-revalue oracle instead.  Both return
        the same numbers bit-for-bit.
        """
        problem = problem_from_request(body)
        engine = str(body.get("engine", "batched"))
        started = time.perf_counter()
        report = compute_greeks(
            problem.model,
            problem.product,
            problem.method,
            spot_bump=float(body.get("spot_bump", 0.01)),
            vol_bump=float(body.get("vol_bump", 0.01)),
            rate_bump=float(body.get("rate_bump", 0.0001)),
            theta_bump=float(body.get("theta_bump", 1.0 / 365.0)),
            engine=engine,
            kernel=str(body.get("kernel", "stacked")),
        )
        self.count("greek_ladders")
        return {
            **report.as_dict(),
            "label": problem.label,
            "method": problem.method_name,
            "engine": engine,
            "elapsed_s": time.perf_counter() - started,
        }

    # -- portfolio runs (POST /v1/run) ------------------------------------------------
    def submit_run(self, body: Mapping[str, Any]) -> JobRecord:
        """Parse and enqueue one portfolio run; returns its queued record."""
        portfolio, priorities = portfolio_from_request(body)
        batch = bool(body.get("batch", False))
        if batch and priorities:
            raise ServeError(
                "per-position priorities cannot be combined with batch=true "
                "(batching regroups positions into shared-path super-jobs)"
            )
        priority = float(body.get("priority", 0.0))
        record = self.jobs.create(
            portfolio, priority=priority, priorities=priorities, batch=batch
        )
        self.count("runs_submitted")
        with self._queue_cond:
            heapq.heappush(self._queue, (-priority, next(self._ticket), record.id))
            self._queue_cond.notify()
        return record

    def cancel_job(self, job_id: str) -> JobRecord | None:
        """Cancel a queued or running job; ``None`` for unknown ids.

        A queued job is withdrawn outright; a running one has its cancel
        token fired, which withdraws every position still queued master-side
        (in-flight positions finish -- the paper's protocol cannot interrupt
        a slave mid-computation).
        """
        record = self.jobs.get(job_id)
        if record is None:
            return None
        record.cancel.cancel()
        if record.state == "queued":
            record.mark_cancelled()
            self.count("runs_cancelled")
        return record

    def _executor_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue and not self._stop.is_set():
                    self._queue_cond.wait(timeout=1.0)
                if self._stop.is_set():
                    return
                _, _, job_id = heapq.heappop(self._queue)
            record = self.jobs.get(job_id)
            if record is None or record.state != "queued":
                continue  # cancelled while queued
            with self._state_lock:
                self._running_job = record.id
            try:
                self._execute(record)
            finally:
                with self._state_lock:
                    self._running_job = None

    def _make_session(self) -> ValuationSession:
        options: dict[str, Any] = {}
        if self.config.backend == "remote":
            options["hosts"] = list(self.live_hosts()) or list(self._hosts)
            # a campaign survives a worker restart: re-dial dead hosts with a
            # capped backoff and bury wedged-but-connected ones in seconds
            options["reconnect"] = True
            options["liveness_timeout"] = 30.0
            if self.config.worker_secret is not None:
                options["secret"] = self.config.worker_secret
        session_kwargs: dict[str, Any] = {
            "backend": self.config.backend,
            "cache": self.cache,
            "backend_options": options or None,
        }
        if self.config.backend != "remote":
            session_kwargs["n_workers"] = self.config.n_workers
        return ValuationSession(**session_kwargs)

    def _execute(self, record: JobRecord) -> None:
        record.mark_running()
        scheduler: Scheduler | None = None
        if record.priorities:
            scheduler = PriorityScheduler(priority=record.priorities)
        try:
            session = self._make_session()
            result = session.run(
                record.portfolio,
                scheduler=scheduler,
                batch=record.batch or None,
                progress=record.add_progress,
                cancel=record.cancel,
            )
        except Exception as exc:  # noqa: BLE001 - one bad run must not kill the daemon
            record.fail(f"{type(exc).__name__}: {exc}")
            self.count("runs_failed")
            return
        report = result.report
        extra = getattr(report, "extra", None) or {}
        with self._state_lock:
            self._campaign_wall_s += float(report.total_time)
            for worker_id, busy in report.worker_busy.items():
                name = self._worker_name(int(worker_id))
                self._busy_s[name] = self._busy_s.get(name, 0.0) + float(busy)
            for key in ("reconnects", "redispatches"):
                if extra.get(key):
                    self._counters[key] = self._counters.get(key, 0) + int(extra[key])
        if report.scheduler == "cache":
            self.count("cache_only_runs")
        record.finish(self._run_payload(result), cancelled=record.cancel.cancelled)
        self.count("runs_cancelled" if record.cancel.cancelled else "runs_completed")

    def _worker_name(self, worker_id: int) -> str:
        if self.config.backend == "remote" and worker_id < len(self._hosts):
            return self._hosts[worker_id]
        return f"worker-{worker_id}"

    @staticmethod
    def _run_payload(result: Any) -> dict[str, Any]:
        """The JSON body of a finished run (submission-ordered, like RunResult)."""
        report = result.report
        payload = {
            "n_jobs": report.n_jobs,
            "n_workers": report.n_workers,
            "strategy": report.strategy,
            "scheduler": report.scheduler,
            "total_time": report.total_time,
            "prices": {str(job_id): price for job_id, price in result.prices().items()},
            "errors": {str(job_id): error for job_id, error in report.errors.items()},
            "results": {
                str(job_id): entry for job_id, entry in report.results.items()
            },
        }
        try:
            payload["value"] = result.value()
        except ReproError:
            payload["value"] = None
        return payload

    # -- worker liveness ---------------------------------------------------------------
    def live_hosts(self) -> tuple[str, ...]:
        with self._state_lock:
            return tuple(h for h in self._hosts if h not in self._dead_hosts)

    def check_workers(self, timeout: float = 5.0) -> dict[str, bool]:
        """Probe every remote worker once; update the dead set.

        A worker that answers the v3 PING keepalive rejoins the live set --
        ``repro-worker`` accept loops survive connection loss, so a "dead"
        address may simply have been restarted.
        """
        if self.config.backend != "remote":
            return {}
        from repro.cluster.worker import probe_worker

        liveness = {
            host: probe_worker(host, timeout=timeout) for host in self._hosts
        }
        with self._state_lock:
            self._dead_hosts = {host for host, ok in liveness.items() if not ok}
        return liveness

    def _monitor_loop(self) -> None:
        interval = self.config.keepalive_interval
        while not self._stop.wait(interval):
            with self._state_lock:
                busy = self._running_job is not None
            if busy:
                continue  # campaign traffic already proves liveness
            self.check_workers(timeout=min(interval, 5.0))

    # -- observability (GET /healthz, /v1/stats) -----------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def healthz(self) -> dict[str, Any]:
        from repro._version import __version__

        dead = len(self._hosts) - len(self.live_hosts()) if self._hosts else 0
        with self._state_lock:
            reconnects = self._counters.get("reconnects", 0)
            redispatches = self._counters.get("redispatches", 0)
        return {
            "status": "degraded" if dead else "ok",
            "version": __version__,
            "backend": self.config.backend,
            "uptime_s": self.uptime_s,
            "workers_dead": dead,
            "reconnects": reconnects,
            "redispatches": redispatches,
        }

    def stats(self) -> dict[str, Any]:
        counts = self.jobs.counts()
        with self._queue_cond:
            queue_depth = len(self._queue)
        with self._state_lock:
            counters = dict(self._counters)
            busy_s = dict(self._busy_s)
            wall = self._campaign_wall_s
            dead_hosts = sorted(self._dead_hosts)
            running = self._running_job
        utilization = {
            name: (busy / wall if wall > 0 else 0.0) for name, busy in busy_s.items()
        }
        return {
            "uptime_s": self.uptime_s,
            "backend": self.config.backend,
            "n_workers": len(self._hosts) or self.config.n_workers,
            "queue_depth": queue_depth,
            "running_job": running,
            "jobs": counts,
            "recent_jobs": self.jobs.recent(12),
            "requests": counters,
            "cache": {
                **self.cache.stats.as_dict(),
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                "directory": str(self.cache.directory) if self.cache.directory else None,
            },
            "workers": {
                "hosts": list(self._hosts),
                "dead": dead_hosts,
                "busy_s": busy_s,
                "utilization": utilization,
                "campaign_wall_s": wall,
                "reconnects": counters.get("reconnects", 0),
                "redispatches": counters.get("redispatches", 0),
            },
        }
