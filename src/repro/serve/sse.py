"""Server-sent-events encoding (the ``GET /v1/stream/{id}`` wire format).

SSE is the natural HTTP spelling of the streaming futures API: one
``text/event-stream`` response carries one ``event:``/``data:`` block per
:class:`~repro.api.futures.StreamProgress` tick, then a single terminal
event named after the job's final state.  The encoder below is the whole
protocol -- data is always one JSON object per event, ids are the event's
position in the job's progress buffer (so a reconnecting client can resume
with ``Last-Event-ID`` semantics client-side).
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["format_sse"]


def format_sse(
    data: Any,
    *,
    event: str | None = None,
    event_id: int | None = None,
) -> bytes:
    """Encode one SSE block: optional ``id`` and ``event`` lines, JSON data.

    ``data`` is rendered as compact JSON on a single ``data:`` line (JSON
    contains no raw newlines, so no multi-line splitting is needed); the
    block ends with the blank line the SSE framing requires.
    """
    lines: list[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        if any(c in event for c in "\r\n"):
            raise ValueError("SSE event names must be single-line")
        lines.append(f"event: {event}")
    payload = json.dumps(data, separators=(",", ":"))
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")
