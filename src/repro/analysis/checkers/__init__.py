"""Built-in ``repro-lint`` checkers.

Importing this package registers every built-in checker with
:func:`repro.analysis.core.register_checker`; third-party checkers can do
the same from their own modules.  One module per contract:

* :mod:`~repro.analysis.checkers.locks` -- lock discipline in the
  threaded serving/cluster layers;
* :mod:`~repro.analysis.checkers.frames` -- frame-protocol gating of the
  remote worker wire format;
* :mod:`~repro.analysis.checkers.frozen` -- no mutation of frozen config
  dataclasses;
* :mod:`~repro.analysis.checkers.determinism` -- no wall clock or entropy
  in the bit-identical subsystems;
* :mod:`~repro.analysis.checkers.registry_docs` -- registered backend and
  scheduler names stay documented and CLI-discoverable;
* :mod:`~repro.analysis.checkers.exceptions` -- no error-swallowing
  ``except`` handlers.
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401  (imported to register)
    determinism,
    exceptions,
    frames,
    frozen,
    locks,
    registry_docs,
)

__all__ = [
    "determinism",
    "exceptions",
    "frames",
    "frozen",
    "locks",
    "registry_docs",
]
