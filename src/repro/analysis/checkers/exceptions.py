"""No error-swallowing ``except`` handlers.

The worker accept/serve loops and the daemon's executor are exactly the
places where a swallowed exception turns into a silent outage: the loop
keeps spinning, the job never answers, and nothing is logged.  Two shapes
are flagged everywhere (the repository has no sanctioned use for either):

* ``except:`` with no exception type also catches ``KeyboardInterrupt``
  and ``SystemExit``, making a worker unkillable (``except-bare``);
* ``except Exception:`` (or ``BaseException``) whose body does nothing --
  just ``pass``, ``continue`` or ``...`` -- erases the error without
  handling, logging or re-raising it (``except-swallow``).  A handler
  that *does* something with the failure (assigns a fallback, returns,
  raises, logs, counts) is fine, however broad its clause.

The rare legitimate swallow (tearing down an already-dead pool, skipping
an unbuildable scenario bump) documents itself with a justified inline
suppression -- which is the point: the justification is reviewable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    Project,
    register_checker,
)

__all__ = ["ExceptionHygieneChecker"]

_BROAD = frozenset({"Exception", "BaseException"})


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for item in nodes:
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return names


def _body_does_nothing(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring or bare ``...``
        return False
    return True


@register_checker("exception-hygiene")
class ExceptionHygieneChecker(Checker):
    """Bare excepts, and broad excepts that discard the error."""

    name = "exception-hygiene"
    description = (
        "no bare except; no except Exception whose body drops the error "
        "on the floor (pass/continue only)"
    )
    rules = {
        "except-bare": (
            "a bare 'except:' catches KeyboardInterrupt/SystemExit too; "
            "name the exceptions (or 'except Exception' at the least)"
        ),
        "except-swallow": (
            "an 'except Exception' handler whose body only passes or "
            "continues swallows the error without a trace"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.walk():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.finding(
                        module,
                        node,
                        "except-bare",
                        "bare 'except:' also catches KeyboardInterrupt and "
                        "SystemExit; catch named exceptions instead",
                    )
                    continue
                if _caught_names(node) & _BROAD and _body_does_nothing(node.body):
                    yield self.finding(
                        module,
                        node,
                        "except-swallow",
                        "this handler catches Exception and then drops the "
                        "error (pass/continue only); handle it, narrow the "
                        "clause, or justify an inline suppression",
                    )
