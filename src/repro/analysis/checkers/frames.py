"""Frame-protocol gating of the remote worker wire format.

``repro.serial.frames`` defines the ``FRAME_*`` kind constants both ends of
the TCP protocol share.  Four hand-kept invariants have guarded every
protocol bump (v1 -> v4) so far; this checker enforces them mechanically:

* every ``FRAME_*`` kind has a **unique** integer value
  (``frame-duplicate-kind``);
* every kind is a member of ``_KNOWN_KINDS`` so ``decode_header`` accepts
  it (``frame-unregistered-kind``);
* every kind added after protocol v1 has a ``_KIND_SINCE`` entry, so
  ``encode_frame`` refuses to send it to a peer too old to understand it
  (``frame-ungated-kind``) -- the v1 baseline (``HELLO``/``JOB``/
  ``RESULT``/``STOP``) is frozen history and hardcoded here;
* every kind is referenced by **both** consumers: the worker's dispatch
  loop (``cluster/worker.py``) and the master-side backend
  (``cluster/backends/remote.py``), so a new frame cannot ship with a
  handler arm missing on one side (``frame-unhandled-kind``).

The checker is silent when the project under analysis has no
``serial/frames.py`` (fixture projects, partial runs).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    register_checker,
)

__all__ = ["FrameProtocolChecker"]

FRAMES_MODULE = "serial/frames.py"
#: (consumer description, path suffix) pairs every kind must be handled in
CONSUMERS = (
    ("the worker dispatch loop", "cluster/worker.py"),
    ("the master-side RemoteBackend", "cluster/backends/remote.py"),
)
#: kinds present since protocol v1 -- frozen history, exempt from _KIND_SINCE
V1_KINDS = frozenset({"FRAME_HELLO", "FRAME_JOB", "FRAME_RESULT", "FRAME_STOP"})


def _frame_constants(tree: ast.Module) -> dict[str, tuple[int, ast.Assign]]:
    """``FRAME_*`` names bound to integer literals at module level."""
    constants: dict[str, tuple[int, ast.Assign]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name) or not target.id.startswith("FRAME_"):
            continue
        if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, int):
            constants[target.id] = (stmt.value.value, stmt)
    return constants


def _collected_names(node: ast.AST) -> set[str]:
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


def _module_binding(tree: ast.Module, name: str) -> ast.expr | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
    return None


def _kind_since(tree: ast.Module) -> dict[str, int]:
    """``_KIND_SINCE`` entries: FRAME name -> first protocol version."""
    value = _module_binding(tree, "_KIND_SINCE")
    gated: dict[str, int] = {}
    if isinstance(value, ast.Dict):
        for key, version in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Name)
                and isinstance(version, ast.Constant)
                and isinstance(version.value, int)
            ):
                gated[key.id] = version.value
    return gated


@register_checker("frame-protocol")
class FrameProtocolChecker(Checker):
    """Unique, version-gated and handled-on-both-ends ``FRAME_*`` kinds."""

    name = "frame-protocol"
    description = (
        "every FRAME_* kind is unique, in _KNOWN_KINDS, version-gated in "
        "_KIND_SINCE, and handled by both the worker and the master backend"
    )
    rules = {
        "frame-duplicate-kind": "two FRAME_* constants share a kind value",
        "frame-unregistered-kind": (
            "a FRAME_* constant is missing from _KNOWN_KINDS, so "
            "decode_header rejects it"
        ),
        "frame-ungated-kind": (
            "a post-v1 FRAME_* constant has no _KIND_SINCE entry (or one "
            "above PROTOCOL_VERSION), so encode_frame cannot version-gate it"
        ),
        "frame-unhandled-kind": (
            "a FRAME_* constant is never referenced by a protocol consumer "
            "(worker loop or master backend)"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        frames = project.module_at(FRAMES_MODULE)
        if frames is None or frames.tree is None:
            return
        tree = frames.tree
        constants = _frame_constants(tree)
        if not constants:
            return

        by_value: dict[int, list[str]] = {}
        for name, (value, _node) in constants.items():
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                for name in sorted(names)[1:]:
                    yield self.finding(
                        frames,
                        constants[name][1],
                        "frame-duplicate-kind",
                        f"{name} reuses kind value {value} "
                        f"(already taken by {sorted(names)[0]})",
                    )

        known_value = _module_binding(tree, "_KNOWN_KINDS")
        known = _collected_names(known_value) if known_value is not None else set()
        gated = _kind_since(tree)
        protocol_version = _module_binding(tree, "PROTOCOL_VERSION")
        max_version = (
            protocol_version.value
            if isinstance(protocol_version, ast.Constant)
            and isinstance(protocol_version.value, int)
            else None
        )

        consumer_names: list[tuple[str, str, set[str] | None]] = []
        for label, suffix in CONSUMERS:
            module = project.module_at(suffix)
            names = (
                _collected_names(module.tree)
                if module is not None and module.tree is not None
                else None
            )
            consumer_names.append((label, suffix, names))

        for name, (value, node) in sorted(constants.items()):
            if name not in known:
                yield self.finding(
                    frames,
                    node,
                    "frame-unregistered-kind",
                    f"{name} (kind {value}) is not in _KNOWN_KINDS; "
                    f"decode_header would reject the frame as unknown",
                )
            if name not in V1_KINDS:
                since = gated.get(name)
                if since is None:
                    yield self.finding(
                        frames,
                        node,
                        "frame-ungated-kind",
                        f"{name} (kind {value}) post-dates protocol v1 but "
                        f"has no _KIND_SINCE entry; encode_frame cannot "
                        f"refuse to send it to an older peer",
                    )
                elif max_version is not None and since > max_version:
                    yield self.finding(
                        frames,
                        node,
                        "frame-ungated-kind",
                        f"{name} claims to exist since protocol v{since}, "
                        f"but PROTOCOL_VERSION is only {max_version}",
                    )
            for label, suffix, names in consumer_names:
                if names is not None and name not in names:
                    yield self.finding(
                        frames,
                        node,
                        "frame-unhandled-kind",
                        f"{name} (kind {value}) is never referenced in "
                        f"{suffix} -- {label} has no arm for it",
                    )
