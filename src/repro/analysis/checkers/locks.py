"""Lock discipline in the threaded layers (``serve``, ``cluster``).

The serving daemon and the worker run real threads around shared state:
``PricingService`` has an executor and a keepalive monitor, ``JobTable``
records are touched by HTTP handlers, the executor and SSE streamers, and
each worker connection prices jobs on a compute lane next to its receive
loop.  Two mistakes are easy to make and expensive to debug:

* calling something that can block -- a socket read, a queue pop, a
  ``collect`` -- while a lock is held, which turns one slow peer into a
  daemon-wide stall (``lock-blocking-call``), or waiting on a condition
  variable with no timeout, which turns one missed ``notify`` into a hang
  (``lock-wait-no-timeout``);
* guarding an attribute with a lock in one method and writing it bare in
  another, which is a data race the tests only catch probabilistically
  (``lock-unguarded-write``, applied to classes that start threads).

Lock scopes are recognised lexically: any ``with`` statement whose context
expression is a name or attribute containing ``lock``, ``cond`` or
``mutex`` (``with self._state_lock:``, ``with send_lock:``).  Nested
``def``/``lambda`` bodies are not treated as executing under the enclosing
lock -- they usually run later, on another thread.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    register_checker,
)

__all__ = ["LockDisciplineChecker"]

_LOCKISH = re.compile(r"(^|_)(lock|cond|mutex)", re.IGNORECASE)

#: attribute calls considered blocking regardless of the receiver
_BLOCKING_ATTRS = frozenset({"recv", "recv_into", "accept", "connect", "sendall"})

#: ``.get(...)`` receivers considered queue-like (``dict.get`` is not blocking)
_QUEUEISH = re.compile(r"queue", re.IGNORECASE)


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(node: ast.expr) -> bool:
    name = _name_of(node)
    return name is not None and _LOCKISH.search(name) is not None


def _held_locks(node: ast.With) -> list[str]:
    held = []
    for item in node.items:
        if _is_lockish(item.context_expr):
            held.append(_name_of(item.context_expr) or "<lock>")
    return held


def _spawns_threads(class_node: ast.ClassDef) -> bool:
    """Does this class start ``threading.Thread`` (or a Process) anywhere?"""
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("Thread", "Process"):
            return True
        if isinstance(func, ast.Name) and func.id in ("Thread", "Process"):
            return True
    return False


def _wait_has_timeout(call: ast.Call, attr: str) -> bool:
    """Does a ``.wait()`` / ``.wait_for()`` call carry a (non-None) timeout?"""
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            )
    # positionally: ``wait(timeout)`` / ``wait_for(predicate, timeout)``
    needed = 1 if attr == "wait" else 2
    return len(call.args) >= needed


def _walk_pruning_lambdas(expr: ast.expr) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but never descends into a ``lambda`` body.

    A lambda passed around under a lock usually runs later, on another
    thread, without the lock -- its body must not count as lock-held code.
    """
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _classify_blocking(call: ast.Call) -> str | None:
    """A short description when ``call`` can block, else ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in _BLOCKING_ATTRS:
            return f"socket .{attr}()"
        if attr == "sleep" and _name_of(func.value) == "time":
            return "time.sleep()"
        if attr == "collect":
            return ".collect()"
        if attr == "get":
            receiver = _name_of(func.value)
            if receiver is not None and _QUEUEISH.search(receiver):
                return f"{receiver}.get()"
        if attr == "join" and _name_of(func.value) in ("thread", "process"):
            return f"{_name_of(func.value)}.join()"
        return None
    if isinstance(func, ast.Name) and func.id == "sleep":
        return "sleep()"
    return None


@register_checker("lock-discipline")
class LockDisciplineChecker(Checker):
    """Blocking work under held locks; racy writes in threaded classes."""

    name = "lock-discipline"
    description = (
        "no blocking calls or unbounded condition waits inside lock scopes; "
        "lock-guarded attributes are never written bare in threaded classes"
    )
    rules = {
        "lock-blocking-call": (
            "a call that can block (socket read/send, queue get, sleep, "
            "collect) happens while a lock is held"
        ),
        "lock-wait-no-timeout": (
            "a condition/event wait inside a lock scope has no timeout"
        ),
        "lock-unguarded-write": (
            "an attribute written under a lock elsewhere is written without "
            "it in a class that starts threads"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.walk():
            assert module.tree is not None
            yield from self._check_blocking(module, module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class_writes(module, node)

    # -- blocking calls under a held lock ---------------------------------------
    def _check_blocking(
        self, module: ModuleInfo, tree: ast.Module
    ) -> Iterator[Finding]:
        yield from self._walk_body(module, tree.body, held=[])

    def _walk_body(
        self, module: ModuleInfo, body: list[ast.stmt], held: list[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._walk_stmt(module, stmt, held)

    def _walk_stmt(
        self, module: ModuleInfo, stmt: ast.stmt, held: list[str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def does not run under the enclosing lock
            yield from self._walk_body(module, stmt.body, held=[])
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._walk_body(module, stmt.body, held=[])
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locks = _held_locks(stmt) if isinstance(stmt, ast.With) else []
            if held:
                # expressions in the with items run under the outer lock
                for item in stmt.items:
                    yield from self._check_expr(module, item.context_expr, held)
            yield from self._walk_body(module, stmt.body, held + locks)
            return
        if held:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    yield from self._check_expr(module, child, held)
        # sub-statements (if/for/try bodies) keep the held set
        for field_body in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field_body, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                yield from self._walk_body(module, sub, held)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from self._walk_body(module, handler.body, held)

    def _check_expr(
        self, module: ModuleInfo, expr: ast.expr, held: list[str]
    ) -> Iterator[Finding]:
        for node in _walk_pruning_lambdas(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("wait", "wait_for"):
                if not _wait_has_timeout(node, func.attr):
                    yield self.finding(
                        module,
                        node,
                        "lock-wait-no-timeout",
                        f".{func.attr}() without a timeout while holding "
                        f"{', '.join(held)}: one missed notify hangs this "
                        f"thread forever",
                    )
                continue
            what = _classify_blocking(node)
            if what is not None:
                yield self.finding(
                    module,
                    node,
                    "lock-blocking-call",
                    f"{what} can block while {', '.join(held)} is held; "
                    f"move the blocking work outside the lock scope",
                )

    # -- attributes written both under and outside a lock ------------------------
    def _check_class_writes(
        self, module: ModuleInfo, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        if not _spawns_threads(class_node):
            return
        locked: dict[str, list[ast.AST]] = {}
        bare: dict[str, list[ast.AST]] = {}
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__new__", "__post_init__"):
                continue  # construction happens before any thread exists
            args = method.args.posonlyargs + method.args.args
            if not args:
                continue
            self_name = args[0].arg
            for name, node, under_lock in self._self_writes(method, self_name):
                (locked if under_lock else bare).setdefault(name, []).append(node)
        for name in sorted(set(locked) & set(bare)):
            for node in bare[name]:
                yield self.finding(
                    module,
                    node,
                    "lock-unguarded-write",
                    f"self.{name} is written under a lock elsewhere in "
                    f"{class_node.name} (which starts threads) but written "
                    f"bare here",
                )

    def _self_writes(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef, self_name: str
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        """(attribute, node, written-under-lock) for ``self.x = ...`` stores."""

        def walk(
            body: list[ast.stmt], depth: int
        ) -> Iterator[tuple[str, ast.AST, bool]]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs: different execution context
                inner = depth
                if isinstance(stmt, ast.With) and _held_locks(stmt):
                    inner = depth + 1
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        yield target.attr, stmt, inner > 0
                for field_body in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, field_body, None)
                    if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                        yield from walk(sub, inner)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from walk(handler.body, inner)

        yield from walk(method.body, 0)
