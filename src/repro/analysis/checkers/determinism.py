"""No wall clock or entropy in the bit-identical subsystems.

Five subsystems promise determinism by construction:

* ``pricing/cache`` -- SHA-256 problem digests key the result cache; two
  runs of the same problem must digest identically on any machine, or the
  cache silently stops hitting;
* ``pricing/batch`` -- shared-path batch pricing is bit-identical to solo
  pricing *because* every random number comes from the injected, seeded
  rng (:mod:`repro.pricing.rng`);
* ``pricing/kernel`` -- the stacked Monte-Carlo kernel promises
  bit-exactness with the loop kernel; a wall-clock or entropy read would
  break the differential harness and the pinned draw digests;
* ``pricing/scenarios`` -- the scenario-grid engine promises batched CRN
  Greeks bit-identical to the serial bump-and-revalue oracle; scenario
  expansion and Greek assembly must stay pure arithmetic over the seeded
  methods they price;
* ``cluster/simcluster`` -- the discrete-event cluster runs in pure
  virtual time; a single wall-clock read would make the paper-table
  reproductions flaky.

Any call into a wall clock (``time.time``, ``datetime.now``, ...) is
``determinism-wall-clock``; any call into an entropy source
(``os.urandom``, ``uuid.uuid4``, ``secrets.*``, module-level ``random.*``
functions) is ``determinism-entropy``.  ``random.Random(seed)`` -- an
explicitly seeded instance handed in by the caller -- stays allowed; the
global ``random`` functions do not, because their state is shared and
unseeded.  Imports are resolved per module (``from time import time`` is
caught too); modules outside the scoped path fragments are ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    register_checker,
)

__all__ = ["DeterminismChecker"]

#: path fragments selecting the modules under the determinism contract
SCOPES = ("pricing/cache", "pricing/batch", "pricing/kernel",
          "pricing/scenarios", "cluster/simcluster")

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)
_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "uuid.uuid5",
    }
)
#: module prefixes where *every* function call is an entropy source ...
_ENTROPY_PREFIXES = ("secrets.", "random.")
#: ... except these (seedable/injectable constructors)
_ENTROPY_ALLOWED = frozenset({"random.Random"})


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from this module's import statements."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _dotted(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve ``a.b.c`` call targets through the module's imports."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _classify(dotted: str) -> tuple[str, str] | None:
    """(rule, what) when ``dotted`` is a banned source, else ``None``."""
    if dotted in _WALL_CLOCK:
        return "determinism-wall-clock", dotted
    if dotted in _ENTROPY:
        return "determinism-entropy", dotted
    if dotted in _ENTROPY_ALLOWED:
        return None
    for prefix in _ENTROPY_PREFIXES:
        if dotted.startswith(prefix):
            return "determinism-entropy", dotted
    return None


@register_checker("determinism")
class DeterminismChecker(Checker):
    """Wall-clock and entropy calls inside the deterministic subsystems."""

    name = "determinism"
    description = (
        "pricing/cache, pricing/batch, pricing/kernel, pricing/scenarios "
        "and cluster/simcluster never read a wall clock or an entropy "
        "source; randomness is injected and seeded"
    )
    rules = {
        "determinism-wall-clock": (
            "a deterministic module reads the wall clock (time.time, "
            "datetime.now, ...)"
        ),
        "determinism-entropy": (
            "a deterministic module draws entropy (os.urandom, uuid, "
            "secrets, unseeded module-level random)"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.walk():
            if not any(scope in module.relpath for scope in SCOPES):
                continue
            assert module.tree is not None
            imports = _import_map(module.tree)
            yield from self._check_module(module, imports)

    def _check_module(
        self, module: ModuleInfo, imports: dict[str, str]
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imports)
            if dotted is None:
                continue
            hit = _classify(dotted)
            if hit is None:
                continue
            rule, what = hit
            source = "the wall clock" if rule == "determinism-wall-clock" else "entropy"
            yield self.finding(
                module,
                node,
                rule,
                f"{what}() reads {source} inside a bit-identical subsystem "
                f"({module.relpath}); inject the value (or a seeded rng) "
                f"from the caller instead",
            )
