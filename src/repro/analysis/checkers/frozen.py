"""No mutation of frozen config dataclasses.

``BackendSpec``, ``RunConfig``, ``SweepConfig``, ``ServerConfig``,
``RetryPolicy`` (and every other ``@dataclass(frozen=True)``) are frozen on
purpose: sessions hash them, retries rebuild backends from them, and a
mutation anywhere would silently fork the configuration two subsystems
think they share.  Python only enforces this at runtime -- on the exact
line executed -- so this checker enforces it statically:

* inside a frozen dataclass, any plain ``self.attr = ...`` raises
  ``FrozenInstanceError`` at runtime, even in ``__post_init__`` (the
  sanctioned idiom is ``object.__setattr__(self, "attr", ...)``) --
  ``frozen-self-mutation``;
* outside, a local variable bound to ``FrozenClass(...)`` must never be
  assigned through (``spec.name = ...``) or passed to ``setattr`` --
  ``frozen-mutation``.

Frozen classes are discovered project-wide first (any class decorated with
``dataclass(frozen=True)``), so the checker follows new config types
automatically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    register_checker,
)

__all__ = ["FrozenConfigChecker"]


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _frozen_class_names(project: Project) -> set[str]:
    names: set[str] = set()
    for module in project.walk():
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                names.add(node.name)
    return names


@register_checker("frozen-config")
class FrozenConfigChecker(Checker):
    """Assignments through instances (or ``self``) of frozen dataclasses."""

    name = "frozen-config"
    description = (
        "frozen dataclasses (BackendSpec, RunConfig, ServerConfig, ...) are "
        "never mutated: no attribute assignment, no setattr"
    )
    rules = {
        "frozen-self-mutation": (
            "plain self.attr assignment inside a frozen dataclass (raises "
            "FrozenInstanceError at runtime; use object.__setattr__)"
        ),
        "frozen-mutation": (
            "attribute assignment or setattr on an instance of a frozen "
            "dataclass"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        frozen_names = _frozen_class_names(project)
        for module in project.walk():
            assert module.tree is not None
            functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
            nested: set[ast.AST] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node):
                    yield from self._check_frozen_class(module, node)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(node)
                    for child in ast.walk(node):
                        if child is not node and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            nested.add(child)
            if frozen_names:
                # nested defs are scanned as part of their enclosing scope
                # (closures see the outer bindings), never twice
                for func in functions:
                    if func not in nested:
                        yield from self._check_function(module, func, frozen_names)

    # -- plain self-assignment inside the frozen class itself ---------------------
    def _check_frozen_class(
        self, module: ModuleInfo, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # a hand-written __init__ owns its own invariants
            args = method.args.posonlyargs + method.args.args
            if not args:
                continue
            self_name = args[0].arg
            for node in ast.walk(method):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        yield self.finding(
                            module,
                            node,
                            "frozen-self-mutation",
                            f"self.{target.attr} = ... inside frozen dataclass "
                            f"{class_node.name}.{method.name} raises "
                            f"FrozenInstanceError at runtime; use "
                            f'object.__setattr__(self, "{target.attr}", ...)',
                        )

    # -- mutation of locals inferred to hold frozen instances ---------------------
    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        frozen_names: set[str],
    ) -> Iterator[Finding]:
        bound: dict[str, str] = {}
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    cls = self._constructed_class(stmt.value, frozen_names)
                    if cls is not None:
                        bound[target.id] = cls
                    elif target.id in bound:
                        del bound[target.id]  # rebound to something else
        if not bound:
            return
        for node in ast.walk(func):
            targets = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in bound
                ):
                    cls = bound[target.value.id]
                    yield self.finding(
                        module,
                        node,
                        "frozen-mutation",
                        f"{target.value.id}.{target.attr} = ... mutates frozen "
                        f"dataclass {cls}; build a new instance "
                        f"(dataclasses.replace) instead",
                    )
            if isinstance(node, ast.Call):
                func_name = getattr(node.func, "id", None)
                if (
                    func_name == "setattr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in bound
                ):
                    cls = bound[node.args[0].id]
                    yield self.finding(
                        module,
                        node,
                        "frozen-mutation",
                        f"setattr on {node.args[0].id} mutates frozen "
                        f"dataclass {cls}; build a new instance "
                        f"(dataclasses.replace) instead",
                    )

    @staticmethod
    def _constructed_class(value: ast.expr, frozen_names: set[str]) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name in frozen_names:
            return name
        return None
