"""Registered backend/scheduler names stay documented and CLI-discoverable.

The backend and scheduler registries are the source of truth for what the
system can do (``register_backend`` in ``repro.cluster.backends``,
``register_scheduler`` in ``repro.core.scheduler``), and two surfaces
promise to mirror them: the author guides ``docs/backends.md`` /
``docs/schedulers.md`` and the ``repro-bench`` command line.  A PR that
registers a name without touching either surface ships an undiscoverable
feature; this checker makes that a lint failure:

* every literal name passed to ``register_backend(...)`` must appear in
  ``docs/backends.md``, and every ``register_scheduler(...)`` name in
  ``docs/schedulers.md`` (``registry-doc-missing``);
* the CLI module (``repro/cli.py``) must enumerate both registries by
  reference -- ``list_backends`` for backends, ``SCHEDULERS`` or
  ``list_schedulers`` for schedulers -- so its listings and validation can
  never go stale name-by-name (``registry-cli-stale``).

Names are matched in the docs as whole words, so prose, tables and code
fences all count.  Projects that register nothing (fixtures) are skipped.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleInfo,
    Project,
    register_checker,
)

__all__ = ["RegistryDocsChecker"]

#: registration call -> (docs page, CLI enumerator names)
REGISTRIES = {
    "register_backend": ("docs/backends.md", ("list_backends",)),
    "register_scheduler": ("docs/schedulers.md", ("SCHEDULERS", "list_schedulers")),
}
CLI_MODULE = "repro/cli.py"


def _registrations(
    module: ModuleInfo,
) -> Iterator[tuple[str, str, ast.Call]]:
    """(registry function, literal name, call node) found in ``module``."""
    assert module.tree is not None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name not in REGISTRIES:
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str) and value:
                yield name, value, node


@register_checker("registry-docs")
class RegistryDocsChecker(Checker):
    """Docs pages and the CLI keep up with the backend/scheduler registries."""

    name = "registry-docs"
    description = (
        "every registered backend/scheduler name appears in its docs page, "
        "and the CLI enumerates the registries instead of hardcoding names"
    )
    rules = {
        "registry-doc-missing": (
            "a registered backend/scheduler name is absent from its docs "
            "page (docs/backends.md or docs/schedulers.md)"
        ),
        "registry-cli-stale": (
            "the CLI module does not enumerate a registry it should "
            "surface (list_backends / SCHEDULERS)"
        ),
    }

    def check(self, project: Project) -> Iterator[Finding]:
        registered: dict[str, list[tuple[str, ModuleInfo, ast.Call]]] = {
            registry: [] for registry in REGISTRIES
        }
        for module in project.walk():
            for registry, name, node in _registrations(module):
                registered[registry].append((name, module, node))

        pages: dict[str, str | None] = {}
        for registry, entries in registered.items():
            if not entries:
                continue
            page, _enumerators = REGISTRIES[registry]
            if page not in pages:
                pages[page] = project.read_text(page)
            text = pages[page]
            for name, module, node in entries:
                if text is None:
                    yield self.finding(
                        module,
                        node,
                        "registry-doc-missing",
                        f"{registry}({name!r}) has no docs page to appear "
                        f"in: {page} does not exist",
                    )
                elif re.search(rf"\b{re.escape(name)}\b", text) is None:
                    yield self.finding(
                        module,
                        node,
                        "registry-doc-missing",
                        f"{registry}({name!r}): the name {name!r} never "
                        f"appears in {page}; document the new entry",
                    )

        cli = project.module_at(CLI_MODULE)
        if cli is None or cli.tree is None:
            return
        cli_names = {
            node.id for node in ast.walk(cli.tree) if isinstance(node, ast.Name)
        }
        for registry, entries in registered.items():
            if not entries:
                continue
            _page, enumerators = REGISTRIES[registry]
            if not any(enumerator in cli_names for enumerator in enumerators):
                yield self.finding(
                    cli,
                    1,
                    "registry-cli-stale",
                    f"{CLI_MODULE} never references "
                    f"{' or '.join(enumerators)}, so the CLI cannot "
                    f"surface what {registry} registered",
                )
