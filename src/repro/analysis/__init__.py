"""repro-lint: AST-based invariant checks for the repro codebase.

The pricing library keeps several contracts that Python cannot express in
types and the test suite can only probe pointwise: lock discipline in the
threaded daemon, version-gating of wire-protocol frames, immutability of
frozen config, determinism of cacheable subsystems, registry/doc parity,
and exception hygiene.  This package enforces them statically over the
stdlib :mod:`ast`, with the same plugin shape as the backend and scheduler
registries:

>>> from repro.analysis import lint_paths
>>> result = lint_paths(["src"])          # doctest: +SKIP
>>> [f.render() for f in result.findings] # doctest: +SKIP

New checkers subclass :class:`Checker` and register with
:func:`register_checker`; the ``repro-lint`` console script (see
:mod:`repro.analysis.cli`) drives them over a source tree.
"""

from repro.analysis.core import (
    AnalysisError,
    Checker,
    Finding,
    LintResult,
    ModuleInfo,
    Project,
    Suppression,
    all_rules,
    build_project,
    create_checkers,
    find_suppressions,
    lint_paths,
    list_checkers,
    register_checker,
)

__all__ = [
    "AnalysisError",
    "Checker",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Suppression",
    "all_rules",
    "build_project",
    "create_checkers",
    "find_suppressions",
    "lint_paths",
    "list_checkers",
    "register_checker",
]
