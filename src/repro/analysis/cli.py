"""The ``repro-lint`` command line.

Runs the registered checkers (see :mod:`repro.analysis.checkers`) over one
or more paths and reports findings as text or JSON::

    repro-lint src/                      # human-readable, exit 1 on findings
    repro-lint --format json src/ tests/ # machine-readable (CI)
    repro-lint --checkers lock-discipline,frame-protocol src/
    repro-lint --list-rules              # the rule catalogue

Exit status: 0 when clean, 1 when findings remain after suppressions,
2 on usage or setup errors (bad paths, unknown checker names).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.core import (
    ENGINE_RULES,
    AnalysisError,
    create_checkers,
    lint_paths,
    list_checkers,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checks for the repro codebase: lock "
            "discipline, frame-protocol gating, frozen-config immutability, "
            "determinism purity, registry/doc parity, exception hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--checkers",
        default=None,
        metavar="NAMES",
        help=(
            "comma-separated checker names to run "
            f"(default: all -- {', '.join(list_checkers())})"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help=(
            "project root findings are reported relative to, and docs pages "
            "are resolved against (default: the current directory)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every checker and rule id, then exit",
    )
    return parser


def _print_rules() -> None:
    print("engine:")
    for rule, description in sorted(ENGINE_RULES.items()):
        print(f"  {rule}: {description}")
    for checker in create_checkers():
        print(f"{checker.name}: {checker.description}")
        for rule, description in sorted(checker.rules.items()):
            print(f"  {rule}: {description}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    names = None
    if args.checkers is not None:
        names = [part.strip() for part in args.checkers.split(",") if part.strip()]
        if not names:
            parser.error("--checkers needs at least one checker name")

    try:
        result = lint_paths(args.paths, root=args.root, checkers=names)
    except AnalysisError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        tail = (
            f"{len(result.findings)} finding(s), {result.suppressed} "
            f"suppressed, {result.n_modules} module(s) checked"
        )
        print(tail if result.findings else f"clean: {tail}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
