"""``python -m repro.analysis`` runs the ``repro-lint`` command line."""

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
