"""The ``repro-lint`` engine: findings, suppressions, the checker registry.

The codebase embodies a stack of invariants the paper's master/worker design
depends on but nothing enforces mechanically: the frame protocol is
version-gated by hand, the serving and cluster layers juggle locks across
threads, the cache layer promises bit-identical digest-keyed determinism,
and the simulated cluster must stay pure virtual-time.  This package turns
those hand-kept contracts into CI-enforced checks built on nothing but the
standard-library :mod:`ast`.

The moving parts mirror the rest of the repository:

* a :class:`Checker` is a plugin registered by name through
  :func:`register_checker` -- the same decorator-factory shape as
  ``register_backend`` and ``register_scheduler`` -- declaring the rule ids
  it can emit;
* :func:`lint_paths` builds a :class:`Project` (every ``*.py`` file under
  the given paths, parsed once) and runs every selected checker over it;
* each violation is a structured :class:`Finding` (path, line, column,
  rule id, message), so the CLI can render text or JSON and tests can
  assert exact rules and line numbers;
* a finding can be waived inline with a *justified* suppression comment::

      risky_call()  # repro-lint: disable=<rule-id> -- why this is safe

  A suppression without the ``-- why`` justification is itself a finding
  (``suppression-no-reason``), and so is one naming a rule that does not
  exist (``suppression-unknown-rule``): the waiver surface cannot rot.

The built-in checkers live in :mod:`repro.analysis.checkers`; the command
line lives in :mod:`repro.analysis.cli` (the ``repro-lint`` console
script).  ``docs/static_analysis.md`` is the rule catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    ClassVar,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    TypeVar,
    overload,
)

from repro.errors import ReproError

__all__ = [
    "AnalysisError",
    "Checker",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Suppression",
    "all_rules",
    "build_project",
    "create_checkers",
    "lint_paths",
    "list_checkers",
    "register_checker",
    "ENGINE_RULES",
]


class AnalysisError(ReproError):
    """A static-analysis run could not be set up (bad paths, bad names)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    checker: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "checker": self.checker,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro-lint: disable=...`` comment."""

    path: str
    line: int
    #: ``"disable"`` (this line and, for a standalone comment, the next)
    #: or ``"disable-file"`` (the whole module)
    scope: str
    rules: tuple[str, ...]
    reason: str


@dataclass
class ModuleInfo:
    """One parsed source file of the project under analysis."""

    path: Path
    #: path relative to the project root, always with ``/`` separators --
    #: checkers match on suffixes like ``serial/frames.py``
    relpath: str
    source: str
    tree: ast.Module | None
    error: SyntaxError | None = None
    _lines: list[str] | None = field(default=None, repr=False)

    @property
    def lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    def matches(self, suffix: str) -> bool:
        """Is this module the project file at ``suffix`` (posix path end)?"""
        return self.relpath == suffix or self.relpath.endswith("/" + suffix)


@dataclass
class Project:
    """Everything a checker may look at: parsed modules plus the repo root.

    ``root`` also anchors non-Python lookups (the registry/doc-consistency
    checker reads ``docs/*.md`` relative to it).
    """

    root: Path
    modules: list[ModuleInfo]

    def walk(self) -> Iterator[ModuleInfo]:
        """Every module that parsed cleanly (syntax errors are engine findings)."""
        for module in self.modules:
            if module.tree is not None:
                yield module

    def module_at(self, suffix: str) -> ModuleInfo | None:
        """The unique module whose relative path ends in ``suffix``, if any."""
        for module in self.walk():
            if module.matches(suffix):
                return module
        return None

    def read_text(self, relpath: str) -> str | None:
        """Contents of a non-Python project file (``docs/backends.md``), if present."""
        candidate = self.root / relpath
        try:
            return candidate.read_text(encoding="utf-8")
        except OSError:
            return None


class Checker:
    """Base class of every registered checker.

    Subclasses set :attr:`name` (the registry key), :attr:`description`
    (one line for ``repro-lint --list-rules``) and :attr:`rules` (rule id
    -> one-line description; a checker may own several rule ids) and
    implement :meth:`check`, yielding :class:`Finding` objects for the
    whole project.  :meth:`finding` is a convenience constructor that
    stamps the checker name and resolves an AST node to a location.
    """

    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    rules: ClassVar[Mapping[str, str]] = {}

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        where: ast.AST | int,
        rule: str,
        message: str,
    ) -> Finding:
        if rule not in self.rules:
            raise AnalysisError(
                f"checker {self.name!r} emitted unknown rule {rule!r}"
            )
        if isinstance(where, int):
            line, col = where, 0
        else:
            line = getattr(where, "lineno", 1)
            col = getattr(where, "col_offset", 0)
        return Finding(
            path=module.relpath,
            line=line,
            col=col,
            rule=rule,
            message=message,
            checker=self.name,
        )


#: registered checker factories, by name (the source of truth, like
#: ``repro.cluster.backends`` and ``repro.core.scheduler.SCHEDULERS``)
CHECKERS: dict[str, Callable[[], Checker]] = {}

_CheckerFactory = TypeVar("_CheckerFactory", bound=Callable[[], Checker])


@overload
def register_checker(name: str) -> Callable[[_CheckerFactory], _CheckerFactory]: ...


@overload
def register_checker(name: str, factory: _CheckerFactory) -> _CheckerFactory: ...


def register_checker(
    name: str, factory: _CheckerFactory | None = None
) -> _CheckerFactory | Callable[[_CheckerFactory], _CheckerFactory]:
    """Register a checker factory (usually the class itself) under ``name``.

    Either call directly (``register_checker("mine", MyChecker)``) or use as
    a decorator factory::

        @register_checker("mine")
        class MyChecker(Checker):
            name = "mine"
            rules = {"my-rule": "what it catches"}
            def check(self, project): ...

    Registered names are accepted by :func:`lint_paths` and the
    ``repro-lint --checkers`` flag; ``docs/static_analysis.md`` walks
    through writing one.
    """
    if not name:
        raise AnalysisError("checker names must be non-empty strings")

    def _register(fn: _CheckerFactory) -> _CheckerFactory:
        CHECKERS[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def list_checkers() -> list[str]:
    """Registered checker names, sorted (built-ins register on import)."""
    _load_builtin_checkers()
    return sorted(CHECKERS)


def create_checkers(names: Sequence[str] | None = None) -> list[Checker]:
    """Instantiate the named checkers (default: every registered one)."""
    _load_builtin_checkers()
    if names is None:
        names = sorted(CHECKERS)
    unknown = [name for name in names if name not in CHECKERS]
    if unknown:
        raise AnalysisError(
            f"unknown checker(s) {', '.join(sorted(unknown))}; "
            f"registered: {', '.join(sorted(CHECKERS))}"
        )
    return [CHECKERS[name]() for name in names]


#: rules emitted by the engine itself rather than any checker
ENGINE_RULES: dict[str, str] = {
    "syntax-error": "a file under analysis does not parse",
    "suppression-no-reason": (
        "an inline suppression carries no '-- why it is safe' justification"
    ),
    "suppression-unknown-rule": (
        "an inline suppression names a rule id that does not exist"
    ),
}


def all_rules(checkers: Iterable[Checker] | None = None) -> dict[str, str]:
    """Every known rule id -> description (engine rules included)."""
    if checkers is None:
        checkers = create_checkers()
    rules = dict(ENGINE_RULES)
    for checker in checkers:
        rules.update(checker.rules)
    return rules


def _load_builtin_checkers() -> None:
    # deferred so ``import repro.analysis.core`` never cycles with the
    # checker modules, which import Checker from here
    from repro.analysis import checkers as _builtin  # noqa: F401


# -- project construction ------------------------------------------------------------
def _iter_source_files(paths: Sequence[Path | str]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def build_project(
    paths: Sequence[Path | str], *, root: Path | str | None = None
) -> Project:
    """Parse every ``*.py`` file under ``paths`` into a :class:`Project`.

    ``root`` (default: the current directory) anchors the relative paths
    findings are reported under and the suffix matching checkers use.
    """
    resolved_root = Path(root).resolve() if root is not None else Path.cwd()
    modules: list[ModuleInfo] = []
    for path in _iter_source_files(paths):
        try:
            relpath = path.resolve().relative_to(resolved_root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        tree: ast.Module | None
        error: SyntaxError | None
        try:
            tree = ast.parse(source, filename=str(path))
            error = None
        except SyntaxError as exc:
            tree = None
            error = exc
        modules.append(
            ModuleInfo(
                path=path, relpath=relpath, source=source, tree=tree, error=error
            )
        )
    return Project(root=resolved_root, modules=modules)


# -- suppressions --------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable-file|disable)="
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


def find_suppressions(module: ModuleInfo) -> list[Suppression]:
    """Every suppression comment in ``module``, in line order."""
    found: list[Suppression] = []
    for lineno, text in enumerate(module.lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        found.append(
            Suppression(
                path=module.relpath,
                line=lineno,
                scope=match.group("scope"),
                rules=rules,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return found


def _suppression_tables(
    module: ModuleInfo, suppressions: list[Suppression]
) -> tuple[set[str], dict[int, set[str]]]:
    """(whole-file rules, line -> rules) suppression lookup for one module."""
    file_rules: set[str] = set()
    line_rules: dict[int, set[str]] = {}
    for suppression in suppressions:
        if suppression.scope == "disable-file":
            file_rules.update(suppression.rules)
            continue
        targets = [suppression.line]
        text = module.lines[suppression.line - 1]
        if text.split("#", 1)[0].strip() == "":
            # a standalone comment line also covers the statement below it
            targets.append(suppression.line + 1)
        for target in targets:
            line_rules.setdefault(target, set()).update(suppression.rules)
    return file_rules, line_rules


# -- the lint run --------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one :func:`lint_paths` run."""

    findings: list[Finding]
    suppressed: int
    n_modules: int
    suppressions: list[Suppression]

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        return {
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "modules": self.n_modules,
            "suppressions": len(self.suppressions),
        }


def lint_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    checkers: Sequence[str] | None = None,
) -> LintResult:
    """Run the selected checkers over every ``*.py`` file under ``paths``.

    Returns a :class:`LintResult` whose ``findings`` are sorted by
    location; inline suppressions have already been applied (their count is
    in ``suppressed``).  This is the library form of ``repro-lint``.
    """
    project = build_project(paths, root=root)
    selected = create_checkers(checkers)
    known_rules = all_rules(selected)

    raw: list[Finding] = []
    all_suppressions: list[Suppression] = []
    tables: dict[str, tuple[set[str], dict[int, set[str]]]] = {}
    for module in project.modules:
        if module.error is not None:
            raw.append(
                Finding(
                    path=module.relpath,
                    line=module.error.lineno or 1,
                    col=(module.error.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {module.error.msg}",
                    checker="engine",
                )
            )
            continue
        suppressions = find_suppressions(module)
        all_suppressions.extend(suppressions)
        tables[module.relpath] = _suppression_tables(module, suppressions)
        for suppression in suppressions:
            if not suppression.reason:
                raw.append(
                    Finding(
                        path=module.relpath,
                        line=suppression.line,
                        col=0,
                        rule="suppression-no-reason",
                        message=(
                            "suppression must justify itself: "
                            "# repro-lint: disable="
                            f"{','.join(suppression.rules)} -- why it is safe"
                        ),
                        checker="engine",
                    )
                )
            for rule in suppression.rules:
                if rule not in known_rules:
                    raw.append(
                        Finding(
                            path=module.relpath,
                            line=suppression.line,
                            col=0,
                            rule="suppression-unknown-rule",
                            message=f"suppression names unknown rule {rule!r}",
                            checker="engine",
                        )
                    )

    for checker in selected:
        raw.extend(checker.check(project))

    findings: list[Finding] = []
    suppressed = 0
    for finding in raw:
        file_rules, line_rules = tables.get(finding.path, (set(), {}))
        if finding.rule in file_rules or finding.rule in line_rules.get(
            finding.line, ()
        ):
            suppressed += 1
            continue
        findings.append(finding)
    findings.sort(key=lambda finding: finding.sort_key)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        n_modules=len(project.modules),
        suppressions=all_suppressions,
    )
