"""Exception hierarchy shared by all ``repro`` subpackages.

Keeping the exceptions in a single leaf module avoids import cycles between
``repro.pricing``, ``repro.serial`` and ``repro.cluster`` while still letting
callers catch a single :class:`ReproError` base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class PricingError(ReproError):
    """Raised when a pricing method cannot produce a valid result."""


class IncompatibleMethodError(PricingError):
    """Raised when a pricing method is applied to an unsupported
    (model, product) pair -- e.g. a closed-form Black-Scholes formula asked to
    price an option under the Heston model."""


class RegistryError(ReproError):
    """Raised on unknown model/option/method identifiers in the
    :mod:`repro.pricing.engine` registry."""


class ProblemStateError(ReproError):
    """Raised when a :class:`~repro.pricing.engine.PricingProblem` is used
    before it is fully specified (missing model, option or method), or when
    results are requested before :meth:`compute` has run."""


class SerializationError(ReproError):
    """Raised when encoding or decoding a serialized object fails."""


class ClusterError(ReproError):
    """Base class for errors raised by the cluster / MPI substrate."""


class CommunicatorError(ClusterError):
    """Raised on invalid use of a communicator (bad rank, closed comm...)."""


class CollectTimeoutError(ClusterError):
    """Raised by a real backend's ``collect(timeout=...)`` when no worker
    answered in time.  The jobs stay in flight; collection can be retried."""


class WorkerLostError(ClusterError):
    """Raised when the worker pool is lost with jobs still unanswered.

    As long as at least one worker survives (or a
    :class:`~repro.cluster.backends.remote.ReconnectPolicy` can still re-dial
    a dead host), the remote backend requeues the lost worker's in-flight
    jobs transparently; this error surfaces only when the *whole* pool is
    gone for good.  It is retryable in the scheduling sense: :attr:`job_ids`
    lists the jobs that were in flight, so a caller can rebuild a backend
    against fresh workers and resubmit exactly those jobs -- which is what
    the session layer does automatically under
    ``RunConfig(retry=RetryPolicy(...))``."""

    def __init__(self, message: str, job_ids: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        #: jobs that were dispatched but never answered
        self.job_ids = tuple(job_ids)


class SimulationError(ClusterError):
    """Raised by the discrete-event cluster simulator on inconsistent
    configurations or corrupted event state."""


class SchedulingError(ReproError):
    """Raised by the portfolio schedulers on invalid configurations
    (e.g. zero workers, unknown strategy, duplicate job ids)."""


class PortfolioError(ReproError):
    """Raised by portfolio builders and the risk layer on invalid inputs."""


class ValuationError(ReproError):
    """Raised by the :class:`~repro.api.session.ValuationSession` facade on
    invalid session configurations or misuse of job handles (e.g. reading a
    handle whose job failed, or gathering an empty batch)."""


class JobCancelledError(ValuationError):
    """Raised when reading the result of a
    :class:`~repro.api.futures.PricingFuture` that was cancelled before it
    was dispatched to a worker."""


class FutureTimeoutError(ValuationError):
    """Raised when :meth:`~repro.api.futures.PricingFuture.result` (or
    ``wait``/``as_completed``) does not complete within its ``timeout``.
    The underlying job keeps running; the call can simply be retried."""


class ServeError(ReproError):
    """Raised by the ``repro-serve`` daemon layer on malformed requests or
    invalid server configurations.  Request-parsing failures surface to HTTP
    clients as 400 responses; they never kill the daemon."""
