"""Event queue primitives for the discrete-event cluster simulator.

The simulator tracks a small number of event kinds (job completions arriving
back at the master); a binary-heap priority queue ordered by virtual time
keeps the master's ``collect`` operation ``O(log n)`` even with hundreds of
in-flight jobs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A timestamped event.

    Events compare by ``(time, sequence)`` so that simultaneous events are
    delivered in insertion order (deterministic simulations).
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A priority queue of :class:`Event` ordered by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at virtual ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
