"""Discrete-event simulated cluster (nodes, network, NFS, virtual time)."""

from repro.cluster.simcluster.comm import STRATEGY_NAMES, CommunicationModel
from repro.cluster.simcluster.events import Event, EventQueue
from repro.cluster.simcluster.network import NetworkModel, gigabit_ethernet
from repro.cluster.simcluster.nfs import NFSModel
from repro.cluster.simcluster.node import ClusterSpec, NodeSpec
from repro.cluster.simcluster.simulator import SimulatedClusterBackend, SimulationTrace

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "NetworkModel",
    "gigabit_ethernet",
    "NFSModel",
    "CommunicationModel",
    "STRATEGY_NAMES",
    "SimulatedClusterBackend",
    "SimulationTrace",
    "Event",
    "EventQueue",
]
