"""Per-strategy communication cost model of the simulated cluster.

The three transmission strategies of the paper differ in where the
file-reading / object-building / serialization work happens and in how many
bytes travel over the network:

============= ======================================== =========================
strategy       master-side work                          worker-side work
============= ======================================== =========================
full load      read file, build object, serialize, pack  unpack, unserialize, build
serialized     read file straight into a Serial, pack    unpack, unserialize, build
  load (sload)
NFS            send the file *name* only                 read file over NFS, build
============= ======================================== =========================

The :class:`CommunicationModel` turns a job (its file size and path) into the
master preparation time, the message size, and the worker preparation time
for each strategy, on top of the :class:`~repro.cluster.simcluster.network.NetworkModel`
and :class:`~repro.cluster.simcluster.nfs.NFSModel` costs.

Default constants are chosen so that the 10,000-option toy portfolio of
Table II lands on the same per-job master occupancies as the paper
(~0.35-0.4 ms for full load, ~0.16-0.19 ms for serialized load, ~60-70 us
for NFS), which is what produces the flattening levels and the crossover
between NFS and serialized load around a dozen CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.backends.base import Job
from repro.cluster.simcluster.network import NetworkModel, gigabit_ethernet
from repro.cluster.simcluster.nfs import NFSModel
from repro.errors import SimulationError

__all__ = ["STRATEGY_NAMES", "CommunicationModel"]

#: the three transmission strategies evaluated in Tables II and III
STRATEGY_NAMES = ("full_load", "nfs", "serialized_load")


@dataclass
class CommunicationModel:
    """Costs of preparing, shipping and unpacking one pricing problem."""

    network: NetworkModel = field(default_factory=gigabit_ethernet)
    nfs: NFSModel = field(default_factory=NFSModel)

    #: master-side fixed costs per job (seconds)
    full_load_overhead: float = 300e-6
    serialized_load_overhead: float = 110e-6
    nfs_master_overhead: float = 15e-6
    #: master-side per-byte cost of touching the payload (read + serialize)
    master_per_byte: float = 4e-9
    #: worker-side fixed cost of unpacking/unserializing/building the problem
    worker_build_overhead: float = 200e-6
    worker_per_byte: float = 4e-9
    #: size of the MPI envelope added to every message
    message_header_bytes: int = 64
    #: size of the message carrying only a file name (NFS strategy)
    name_message_bytes: int = 96
    #: size of the result message sent back by the worker
    result_message_bytes: int = 256
    #: master-side cost of receiving and storing one result
    master_receive_overhead: float = 20e-6
    #: master-side cost of sending the final empty stop message to one worker
    stop_message_bytes: int = 32

    def cold_copy(self) -> "CommunicationModel":
        """A copy of this model with an empty (cold) NFS server cache.

        Every cost constant -- including any customised :class:`NFSModel`
        latencies and bandwidth -- is preserved; only the cache history is
        dropped.  This is what an independent cold run of the same experiment
        sees, and what ``share_nfs_cache=False`` sweeps use between CPU
        counts.  The network model is stateless and is shared.
        """
        return replace(self, nfs=replace(self.nfs, _cache=set()))

    def _check_strategy(self, strategy: str) -> None:
        if strategy not in STRATEGY_NAMES:
            raise SimulationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGY_NAMES}"
            )

    # -- master side ------------------------------------------------------------
    def master_prep_time(self, strategy: str, job: Job) -> float:
        """Master-side time to prepare the message for one job."""
        self._check_strategy(strategy)
        if strategy == "full_load":
            # read the file, build the object, serialize it again, pack it
            return self.full_load_overhead + 2.0 * job.file_size * self.master_per_byte
        if strategy == "serialized_load":
            # sload: read the file directly into a Serial object, pack it
            return self.serialized_load_overhead + job.file_size * self.master_per_byte
        # nfs: only the name is sent
        return self.nfs_master_overhead

    def message_nbytes(self, strategy: str, job: Job) -> int:
        """Bytes sent from the master to the worker for one job."""
        self._check_strategy(strategy)
        if strategy == "nfs":
            return self.name_message_bytes
        return job.file_size + self.message_header_bytes

    def send_time(self, strategy: str, job: Job) -> float:
        """Network time of the master-to-worker message."""
        return self.network.transfer_time(self.message_nbytes(strategy, job))

    # -- worker side ------------------------------------------------------------
    def worker_prep_time(self, strategy: str, job: Job) -> float:
        """Worker-side time to obtain and rebuild the problem object."""
        self._check_strategy(strategy)
        build = self.worker_build_overhead + job.file_size * self.worker_per_byte
        if strategy == "nfs":
            return self.nfs.read_time(job.path, job.file_size) + build
        return build

    # -- results ----------------------------------------------------------------
    def result_return_time(self) -> float:
        """Network time of the worker-to-master result message."""
        return self.network.transfer_time(self.result_message_bytes)

    def stop_time(self) -> float:
        """Master-side time to send one stop message."""
        return self.network.transfer_time(self.stop_message_bytes)
