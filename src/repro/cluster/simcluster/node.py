"""Compute-node model of the simulated cluster.

The paper's test machine is "a 256-PC cluster of SUPELEC.  Each node is a
dual core processor: INTEL Xeon-3075 2.66 GHz ... The two cores of each node
share 4GB of RAM ... in our implementation a dual core processor is actually
seen as two single core processors."  The simulator therefore models a pool
of single-core *workers*; a worker's only performance attribute is a relative
speed factor (1.0 = the reference node of the cost model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["NodeSpec", "ClusterSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """One single-core worker.

    Attributes
    ----------
    speed:
        Relative speed; a job whose reference cost is ``c`` seconds takes
        ``c / speed`` seconds on this node.
    name:
        Optional label used in reports.
    """

    speed: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise SimulationError("node speed must be strictly positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous or heterogeneous pool of workers.

    ``n_workers`` corresponds to the paper's "number of CPUs" minus one (the
    master occupies one CPU and only schedules).
    """

    n_workers: int
    nodes: tuple[NodeSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise SimulationError("a cluster needs at least one worker")
        if self.nodes and len(self.nodes) != self.n_workers:
            raise SimulationError(
                f"got {len(self.nodes)} node specs for {self.n_workers} workers"
            )

    @classmethod
    def homogeneous(cls, n_workers: int, speed: float = 1.0) -> "ClusterSpec":
        """All workers identical -- the paper's setting."""
        return cls(
            n_workers=n_workers,
            nodes=tuple(NodeSpec(speed=speed, name=f"node{i:03d}") for i in range(n_workers)),
        )

    @classmethod
    def heterogeneous(cls, speeds: list[float]) -> "ClusterSpec":
        """Workers with individual speed factors (used by the scheduler
        ablation benchmarks to stress the load balancers)."""
        return cls(
            n_workers=len(speeds),
            nodes=tuple(
                NodeSpec(speed=s, name=f"node{i:03d}") for i, s in enumerate(speeds)
            ),
        )

    def speed_of(self, worker_id: int) -> float:
        if not 0 <= worker_id < self.n_workers:
            raise SimulationError(f"invalid worker id {worker_id}")
        if not self.nodes:
            return 1.0
        return self.nodes[worker_id].speed

    @classmethod
    def from_cpu_count(cls, n_cpus: int, speed: float = 1.0) -> "ClusterSpec":
        """Build a cluster from the paper's "number of CPUs" convention.

        One CPU is the master, the remaining ``n_cpus - 1`` are workers, as
        in the speedup-ratio definition of Tables I-III.
        """
        if n_cpus < 2:
            raise SimulationError("need at least 2 CPUs (1 master + 1 worker)")
        return cls.homogeneous(n_cpus - 1, speed=speed)
