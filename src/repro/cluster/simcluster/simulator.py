"""Discrete-event simulation of the master/worker cluster.

:class:`SimulatedClusterBackend` implements the
:class:`~repro.cluster.backends.base.WorkerBackend` interface in *virtual*
time: the scheduler drives it exactly like a real backend (dispatch one job
to a worker, collect results as they come back), but instead of running the
pricing code, the backend advances clocks according to

* the master-side preparation cost of the chosen transmission strategy;
* the network transfer time of the message (master blocks while sending,
  which is what makes the master the bottleneck for cheap jobs);
* the worker-side preparation cost (including NFS reads for the NFS
  strategy);
* the job's compute cost divided by the worker's speed factor;
* the return trip of the small result message.

The master is modelled as a single resource (it prepares and sends one
message at a time); workers are independent resources.  This is enough to
reproduce the three regimes of the paper's tables: near-linear speedup when
jobs are expensive (Table III), master-bound flattening when jobs are cheap
(Table II), and plateauing at the longest single job when the portfolio is
small compared to the worker count (Table I).

Set ``execute=True`` to also run the pricing code for real while keeping the
virtual-time accounting -- useful for end-to-end tests on small portfolios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cluster.backends.base import (
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.cluster.backends.execution import execute_payload
from repro.cluster.simcluster.comm import CommunicationModel
from repro.cluster.simcluster.events import EventQueue
from repro.cluster.simcluster.node import ClusterSpec
from repro.errors import ClusterError, SimulationError, WorkerLostError

__all__ = ["SimulatedClusterBackend", "SimulationTrace"]


@dataclass
class SimulationTrace:
    """Per-job timing record kept by the simulator (for tests and reports)."""

    job_id: int
    worker_id: int
    dispatched_at: float
    worker_start: float
    worker_done: float
    collected_at: float
    compute_time: float
    category: str = "generic"


@dataclass
class _InFlight:
    job: Job
    worker_id: int
    dispatched_at: float
    worker_start: float
    worker_done: float
    compute_time: float
    result: dict[str, Any] | None = None
    error: str | None = None


class SimulatedClusterBackend(WorkerBackend):
    """Virtual-time master/worker backend.

    Parameters
    ----------
    cluster:
        Worker pool specification (:class:`ClusterSpec`).
    strategy:
        Transmission strategy name (``"full_load"``, ``"nfs"`` or
        ``"serialized_load"``); determines the per-job communication costs.
    comm:
        Communication cost model; the default reproduces the paper's
        Gigabit-Ethernet + NFS cluster.  Reuse one instance across a CPU-count
        sweep to let the NFS cache persist between runs (the paper's Table II
        artefact); pass a fresh instance for independent runs.
    execute:
        When ``True`` the backend also runs the pricing code (needs jobs with
        an in-memory problem or a real file).  Virtual time is still advanced
        from the cost model, not from the measured time, so simulated results
        stay machine-independent.
    churn:
        Optional :class:`~repro.cluster.chaos.ChurnSchedule`: workers die or
        join at virtual times.  A dispatch routed to a dead worker is
        deterministically redirected to the live worker that frees up
        earliest; a job computing when its worker dies restarts on a
        survivor at the death instant (charging the lost partial work); a
        joining worker's clock starts at its join time.  The scheduler sees
        the joiners in ``n_workers`` from the start -- jobs sent to an
        unborn worker simply wait for its birth.
    """

    requires_payload = False

    def __init__(
        self,
        cluster: ClusterSpec,
        strategy: str = "serialized_load",
        comm: CommunicationModel | None = None,
        execute: bool = False,
        churn: Any = None,
    ):
        self.cluster = cluster
        self.strategy = strategy
        self.comm = comm if comm is not None else CommunicationModel()
        self.comm._check_strategy(strategy)
        self.execute = bool(execute)
        self.churn = churn

        base = cluster.n_workers
        joins = list(churn.joins) if churn is not None else []
        self._birth = [0.0] * base + [birth for birth, _speed in joins]
        self._join_speed = {
            base + index: speed for index, (_birth, speed) in enumerate(joins)
        }
        self._death: dict[int, float] = dict(churn.kills) if churn is not None else {}
        for worker_id in self._death:
            if not 0 <= worker_id < base + len(joins):
                raise SimulationError(
                    f"churn schedule kills unknown worker {worker_id} "
                    f"(cluster has workers 0..{base + len(joins) - 1})"
                )
        self._churn_redirects = 0
        self._churn_restarts = 0

        n_total = base + len(joins)
        self._master_time = 0.0
        self._master_busy = 0.0
        self._worker_free = [0.0] * n_total
        self._worker_busy = [0.0] * n_total
        self._events = EventQueue()
        self._in_flight = 0
        self._n_jobs = 0
        self._bytes_sent = 0
        self._traces: list[SimulationTrace] = []
        self._finalized = False

    # -- WorkerBackend interface ---------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._worker_free)

    @property
    def virtual_time(self) -> float:
        """Current master virtual clock (seconds)."""
        return self._master_time

    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage | None = None) -> None:
        if self._finalized:
            raise ClusterError("backend already finalized")
        if not 0 <= worker_id < self.n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")

        prep = self.comm.master_prep_time(self.strategy, job)
        send = self.comm.send_time(self.strategy, job)
        nbytes = self.comm.message_nbytes(self.strategy, job)
        dispatched_at = self._master_time
        self._master_time += prep + send
        self._master_busy += prep + send
        self._bytes_sent += nbytes

        arrival = self._master_time
        worker_prep = self.comm.worker_prep_time(self.strategy, job)
        worker_id, start, done, compute = self._place(
            worker_id, arrival, worker_prep, job
        )

        result: dict[str, Any] | None = None
        error: str | None = None
        if self.execute:
            result, _elapsed, error = self._execute_job(job, message)

        record = _InFlight(
            job=job,
            worker_id=worker_id,
            dispatched_at=dispatched_at,
            worker_start=start,
            worker_done=done,
            compute_time=compute,
            result=result,
            error=error,
        )
        self._events.push(done + self.comm.result_return_time(), "result", record)
        self._in_flight += 1
        self._n_jobs += 1

    def dispatch_batch(
        self,
        worker_id: int,
        jobs: list[Job],
        messages: list[PreparedMessage] | None = None,
    ) -> None:
        """Dispatch several jobs in a single message (chunked scheduling).

        The master still pays the per-job preparation cost, but only one
        network latency is charged for the whole chunk -- "it is always
        advisable to send a single large message rather [than] several
        smaller messages".
        """
        if self._finalized:
            raise ClusterError("backend already finalized")
        if not 0 <= worker_id < self.n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if not jobs:
            return

        prep = sum(self.comm.master_prep_time(self.strategy, job) for job in jobs)
        nbytes = sum(self.comm.message_nbytes(self.strategy, job) for job in jobs)
        send = self.comm.network.transfer_time(nbytes)
        self._master_time += prep + send
        self._master_busy += prep + send
        self._bytes_sent += nbytes
        arrival = self._master_time

        for index, job in enumerate(jobs):
            message = messages[index] if messages else None
            worker_prep = self.comm.worker_prep_time(self.strategy, job)
            # _place commits the worker's free time, so chunk members chain
            # on the same worker exactly as the sequential in-order model did
            placed_id, start, done, compute = self._place(
                worker_id, arrival, worker_prep, job
            )
            result: dict[str, Any] | None = None
            error: str | None = None
            if self.execute:
                result, _elapsed, error = self._execute_job(job, message)
            record = _InFlight(
                job=job,
                worker_id=placed_id,
                dispatched_at=arrival,
                worker_start=start,
                worker_done=done,
                compute_time=compute,
                result=result,
                error=error,
            )
            self._events.push(done + self.comm.result_return_time(), "result", record)
            self._in_flight += 1
            self._n_jobs += 1

    def poll(self) -> bool:
        # in virtual time the next completion event is always "ready":
        # collecting it advances the master clock to the completion instant
        return self._in_flight > 0

    def collect(self, timeout: float | None = None) -> CompletedJob:
        if self._in_flight == 0:
            raise ClusterError("no job in flight")
        event = self._events.pop()
        record: _InFlight = event.payload
        self._master_time = max(self._master_time, event.time)
        self._master_time += self.comm.master_receive_overhead
        self._master_busy += self.comm.master_receive_overhead
        self._in_flight -= 1
        self._traces.append(
            SimulationTrace(
                job_id=record.job.job_id,
                worker_id=record.worker_id,
                dispatched_at=record.dispatched_at,
                worker_start=record.worker_start,
                worker_done=record.worker_done,
                collected_at=self._master_time,
                compute_time=record.compute_time,
                category=record.job.category,
            )
        )
        return CompletedJob(
            job_id=record.job.job_id,
            worker_id=record.worker_id,
            result=record.result,
            compute_time=record.compute_time,
            collected_at=self._master_time,
            error=record.error,
        )

    def send_stop(self, worker_id: int) -> None:
        """Model the final empty message telling a worker to stop (Fig. 4)."""
        if not 0 <= worker_id < self.n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        cost = self.comm.stop_time()
        self._master_time += cost
        self._master_busy += cost

    def finalize(self) -> BackendStats:
        if self._in_flight:
            raise ClusterError(
                f"cannot finalize with {self._in_flight} job(s) still in flight"
            )
        self._finalized = True
        total = self._master_time
        extra: dict[str, Any] = {
            "strategy": self.strategy,
            "nfs_cached_paths": self.comm.nfs.cached_count,
        }
        if self.churn is not None:
            extra["churn_kills"] = len(self._death)
            extra["churn_joins"] = len(self._join_speed)
            extra["churn_redirects"] = self._churn_redirects
            extra["churn_restarts"] = self._churn_restarts
        return BackendStats(
            total_time=total,
            n_jobs=self._n_jobs,
            n_workers=self.n_workers,
            worker_busy={i: busy for i, busy in enumerate(self._worker_busy)},
            master_busy=self._master_busy,
            bytes_sent=self._bytes_sent,
            extra=extra,
        )

    # -- placement ---------------------------------------------------------------
    def _speed_of(self, worker_id: int) -> float:
        if worker_id >= self.cluster.n_workers:
            return self._join_speed[worker_id]
        return self.cluster.speed_of(worker_id)

    def _pick_survivor(self, now: float, job: Job) -> int:
        """The live worker that can start soonest at virtual time ``now``.

        Joiners not yet born count as live (the job waits for their birth),
        so a schedule that kills the whole initial pool but joins a
        replacement still completes.  Ties break on the lowest worker id,
        keeping the redirect fully deterministic.
        """
        best: int | None = None
        best_start = 0.0
        for wid in range(self.n_workers):
            death = self._death.get(wid)
            if death is not None and death <= max(now, self._birth[wid]):
                continue
            start = max(now, self._worker_free[wid], self._birth[wid])
            if best is None or (start, wid) < (best_start, best):
                best, best_start = wid, start
        if best is None:
            raise WorkerLostError(
                f"churn schedule killed the whole simulated cluster by "
                f"t={now:.3f}",
                job_ids=(job.job_id,),
            )
        return best

    def _place(
        self, worker_id: int, arrival: float, worker_prep: float, job: Job
    ) -> tuple[int, float, float, float]:
        """Put one job on a worker; returns ``(worker, start, done, compute)``.

        Without churn this is the original placement arithmetic verbatim.
        With churn, a dispatch aimed at a dead worker is redirected to the
        earliest-free survivor, and a worker dying mid-compute charges the
        lost partial work and restarts the job on a survivor at the death
        instant -- the master never loses a job, it just pays for it.
        """
        if self.churn is None:
            compute = job.compute_cost / self._speed_of(worker_id)
            start = max(arrival, self._worker_free[worker_id])
            done = start + worker_prep + compute
            self._worker_free[worker_id] = done
            self._worker_busy[worker_id] += worker_prep + compute
            return worker_id, start, done, compute

        wid, now = worker_id, arrival
        for _attempt in range(2 * self.n_workers + 4):
            death = self._death.get(wid)
            if death is not None and death <= max(now, self._birth[wid]):
                wid = self._pick_survivor(now, job)
                self._churn_redirects += 1
                continue
            start = max(now, self._worker_free[wid], self._birth[wid])
            compute = job.compute_cost / self._speed_of(wid)
            done = start + worker_prep + compute
            death = self._death.get(wid)
            if death is None or done <= death:
                self._worker_free[wid] = done
                self._worker_busy[wid] += worker_prep + compute
                return wid, start, done, compute
            # the worker dies mid-job: charge the partial work, restart
            self._worker_busy[wid] += max(0.0, death - start)
            self._worker_free[wid] = death
            self._churn_restarts += 1
            now = death
            wid = self._pick_survivor(now, job)
        raise SimulationError(
            f"churn placement for job {job.job_id} did not converge"
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def traces(self) -> list[SimulationTrace]:
        """Per-job timing records (dispatch/start/done/collect)."""
        return list(self._traces)

    def _execute_job(
        self, job: Job, message: PreparedMessage | None
    ) -> tuple[dict[str, Any] | None, float, str | None]:
        if message is not None and message.payload is not None:
            return execute_payload(message.kind, message.payload)
        if job.problem is not None:
            return execute_payload("problem", job.problem)
        if job.path:
            return execute_payload("path", job.path)
        raise SimulationError(
            f"execute=True but job {job.job_id} has neither a problem nor a file"
        )
