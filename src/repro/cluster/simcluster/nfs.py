"""NFS file-server model.

"The cluster on which all the tests were carried out use a NFS file system,
which makes it possible for the master to only send the name of the file to
be read and let the slave read the file content."  The paper also observes
that "the NFS file system uses a caching system which makes the following
access to the same files much faster than the first one", an artefact that
visibly distorts the NFS column of Table II (the 2-CPU run pays cold-cache
reads, the later runs of the sweep reuse the warm server cache).

The model therefore keeps a persistent set of cached paths: the first read of
a path pays the cold-read cost (disk + NFS protocol), subsequent reads of the
same path -- including reads performed in *later runs of the same sweep* when
the model instance is reused, exactly as the physical server cache persisted
across the paper's successive experiments -- pay the much cheaper warm cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["NFSModel"]


@dataclass
class NFSModel:
    """Cold/warm NFS read cost model with a persistent server cache.

    Attributes
    ----------
    cold_latency:
        Fixed cost of a read that misses the server cache (disk seek + NFS
        round trips).
    warm_latency:
        Fixed cost of a read served from the server cache.
    bandwidth:
        Streaming bandwidth applied to the file size on top of the fixed
        latencies.
    cache_enabled:
        When ``False`` every read pays the cold cost (useful to model the
        "clean run with a new portfolio" the paper says would be the fair
        comparison).
    """

    cold_latency: float = 900e-6
    warm_latency: float = 220e-6
    bandwidth: float = 80e6
    cache_enabled: bool = True
    _cache: set[str] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.cold_latency < 0 or self.warm_latency < 0:
            raise SimulationError("latencies must be non-negative")
        if self.warm_latency > self.cold_latency:
            raise SimulationError("warm reads cannot be slower than cold reads")
        if self.bandwidth <= 0:
            raise SimulationError("bandwidth must be strictly positive")

    # -- reads -------------------------------------------------------------------
    def read_time(self, path: str, nbytes: int) -> float:
        """Cost of reading ``path`` (``nbytes`` long) and cache the path."""
        if nbytes < 0:
            raise SimulationError("file size must be non-negative")
        stream = nbytes / self.bandwidth
        if self.cache_enabled and path in self._cache:
            return self.warm_latency + stream
        if self.cache_enabled:
            self._cache.add(path)
        return self.cold_latency + stream

    def is_cached(self, path: str) -> bool:
        return self.cache_enabled and path in self._cache

    # -- cache management ----------------------------------------------------------
    def warm_up(self, paths: list[str]) -> None:
        """Pre-populate the cache (e.g. to model a sweep that starts after an
        earlier experiment already touched every file)."""
        if self.cache_enabled:
            self._cache.update(paths)

    def flush(self) -> None:
        """Empty the cache -- the "clean run with a new portfolio" scenario."""
        self._cache.clear()

    @property
    def cached_count(self) -> int:
        return len(self._cache)
