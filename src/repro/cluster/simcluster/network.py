"""Interconnect model of the simulated cluster.

"All the nodes are interconnected using a Gigabit Ethernet network."  The
model is the classic latency + size/bandwidth (alpha-beta) point-to-point
cost; broadcast-style collectives are not needed by the master/worker
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["NetworkModel", "gigabit_ethernet"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta (latency/bandwidth) network cost model.

    Attributes
    ----------
    latency:
        One-way message latency in seconds (includes the MPI software stack).
    bandwidth:
        Sustained point-to-point bandwidth in bytes per second.
    """

    latency: float = 50e-6
    bandwidth: float = 117e6  # ~1 Gbit/s of useful payload

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimulationError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise SimulationError("bandwidth must be strictly positive")

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between two nodes."""
        if nbytes < 0:
            raise SimulationError("message size must be non-negative")
        return self.latency + nbytes / self.bandwidth


def gigabit_ethernet() -> NetworkModel:
    """The paper's interconnect: Gigabit Ethernet with MPI over TCP."""
    return NetworkModel(latency=50e-6, bandwidth=117e6)
