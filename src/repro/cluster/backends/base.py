"""Backend interface shared by the real and simulated execution engines.

A *backend* plays the role of the MPI slave pool in the paper's scripts: the
master (the scheduler in :mod:`repro.core.scheduler`) dispatches one job at a
time to a chosen worker and collects results as they come back
(``MPI_Probe`` on any source followed by ``MPI_Recv_Obj`` in Fig. 4/5).

Implementations are resolved by name through the backend registry
(:func:`repro.cluster.backends.list_backends` enumerates what is currently
registered -- the built-ins run jobs in the master process, in local worker
processes, on remote ``repro-worker`` TCP servers, and on the discrete-event
cluster simulator that reproduces Tables I-III at laptop scale).  Register
your own engine with :func:`repro.cluster.backends.register_backend`; the
backend-author guide in ``docs/backends.md`` documents this contract with a
worked example.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ClusterError

__all__ = [
    "PAYLOAD_SERIAL",
    "PAYLOAD_PATH",
    "PAYLOAD_PROBLEM",
    "Job",
    "PreparedMessage",
    "CompletedJob",
    "WorkerBackend",
]

#: the master sends serialized problem bytes (full-load and serialized-load
#: strategies)
PAYLOAD_SERIAL = "serial"
#: the master sends only a file name; the worker reads the shared file system
#: (NFS strategy)
PAYLOAD_PATH = "path"
#: the master hands over an in-memory problem object (sequential backend,
#: tests)
PAYLOAD_PROBLEM = "problem"

_VALID_PAYLOAD_KINDS = (PAYLOAD_SERIAL, PAYLOAD_PATH, PAYLOAD_PROBLEM)


@dataclass
class Job:
    """One unit of work: a pricing problem to value.

    Attributes
    ----------
    job_id:
        Unique integer identifier within a run.
    path:
        Problem file path (may be virtual when the run is simulation-only).
    file_size:
        Size in bytes of the serialized problem (drives message sizes and
        NFS read sizes in the simulation).
    compute_cost:
        Estimated compute time in seconds on a reference node (from
        :class:`repro.cluster.costmodel.CostModel`).
    category:
        Free-form tag ("vanilla", "barrier_pde", ...) used in reports.
    problem:
        Optional in-memory :class:`~repro.pricing.engine.PricingProblem`;
        required by executing backends when no file was written.
    """

    job_id: int
    path: str
    file_size: int
    compute_cost: float
    category: str = "generic"
    problem: Any | None = None


@dataclass
class PreparedMessage:
    """What the master actually sends for a job under a given strategy."""

    kind: str
    payload: Any
    nbytes: int
    #: master-side preparation time actually spent (seconds, real backends)
    prep_elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_PAYLOAD_KINDS:
            raise ClusterError(f"invalid payload kind {self.kind!r}")


@dataclass
class CompletedJob:
    """A result collected by the master."""

    job_id: int
    worker_id: int
    result: dict[str, Any] | None
    #: time spent computing on the worker (real seconds or virtual seconds)
    compute_time: float
    #: master-clock time at which the result was collected (virtual time for
    #: the simulated backend, wall-clock offset for real backends)
    collected_at: float
    error: str | None = None


@dataclass
class BackendStats:
    """Aggregate statistics reported by a backend at the end of a run."""

    total_time: float
    n_jobs: int
    n_workers: int
    worker_busy: dict[int, float] = field(default_factory=dict)
    master_busy: float = 0.0
    bytes_sent: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


class WorkerBackend(abc.ABC):
    """Master-side view of a pool of workers."""

    #: whether the scheduler must prepare a real payload before dispatching
    #: (True for executing backends; the simulated backend models the
    #: preparation cost instead and accepts ``message=None``)
    requires_payload: bool = True

    @property
    @abc.abstractmethod
    def n_workers(self) -> int:
        """Number of slave workers available (the paper's ``mpi_size - 1``)."""

    @abc.abstractmethod
    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage) -> None:
        """Send ``job`` (already prepared as ``message``) to ``worker_id``.

        The call returns as soon as the master is free again -- immediately
        for real backends (the payload is handed to the OS), after the
        simulated send completes for the simulated backend.
        """

    @abc.abstractmethod
    def collect(self, timeout: float | None = None) -> CompletedJob:
        """Block until any worker returns a result and return it.

        Mirrors ``MPI_Probe(-1, -1, ...)`` followed by ``MPI_Recv_Obj``.
        Raises :class:`ClusterError` if no job is in flight, or (for real
        backends) if no result arrives within ``timeout`` seconds.  Backends
        whose results are immediate in their own clock -- the sequential
        backend, the virtual-time simulator -- ignore ``timeout``.
        """

    def dispatch_batch(
        self,
        worker_id: int,
        jobs: list[Job],
        messages: "list[PreparedMessage] | None" = None,
    ) -> None:
        """Send several jobs to one worker as a single logical message.

        The chunked dispatch policy ships whole chunks through this method:
        backends with a genuine bulk path override it to pay one message
        cost per chunk (one queue item on the multiprocessing backend, one
        TCP frame on the remote backend, a single charged send latency on
        the simulated cluster).  The default simply loops :meth:`dispatch`
        per job, so every backend accepts chunked scheduling out of the box.

        ``messages`` aligns index-for-index with ``jobs``; it is ``None``
        for backends with ``requires_payload = False``.
        """
        for index, job in enumerate(jobs):
            self.dispatch(
                worker_id, job, messages[index] if messages is not None else None
            )

    @abc.abstractmethod
    def finalize(self) -> BackendStats:
        """Stop all workers and return aggregate statistics."""

    # -- incremental collection --------------------------------------------------
    def poll(self) -> bool:
        """Whether :meth:`collect` would return immediately (``MPI_Iprobe``).

        ``True`` means a completed result is ready for collection *now*; for
        the simulated cluster "now" is virtual time, so any in-flight job is
        collectable (collecting advances the virtual clock to its completion).
        Never blocks.  The conservative default (``False``) keeps third-party
        backends correct -- streaming then degrades to blocking collection.
        """
        return False

    def try_collect(self) -> CompletedJob | None:
        """Collect one result if ready, else return ``None``.  Never blocks."""
        if self.poll():
            return self.collect()
        return None

    # -- optional hooks ---------------------------------------------------------
    def on_run_start(self, n_jobs: int) -> None:
        """Called by the scheduler before dispatching the first job."""

    def send_stop(self, worker_id: int) -> None:
        """Tell one worker there is no more work (the empty message of
        Fig. 4).  Default: no-op; real backends stop their workers in
        :meth:`finalize`, the simulated backend charges the message cost."""

    def __enter__(self) -> "WorkerBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        try:
            self.finalize()
        except ClusterError:
            pass
