"""Execution backends implementing the master/worker interface.

Backend registry
----------------

Backends are resolvable by name, exactly like models, products and methods in
:mod:`repro.pricing.engine`, so that high-level entry points (the
:class:`~repro.api.session.ValuationSession` facade, the CLI) can select an
execution engine from a plain string:

The registry is the source of truth -- :func:`list_backends` enumerates
whatever is registered at runtime, including third-party engines.  The
built-in registrations are:

``"local"`` (alias ``"sequential"``)
    :class:`~repro.cluster.backends.local.SequentialBackend` -- runs every job
    in the master process; the reference backend for exact-result tests.
``"multiprocessing"``
    :class:`~repro.cluster.backends.multiproc.MultiprocessingBackend` -- real
    worker processes on the local machine; accepts a ``start_method`` option.
``"remote"``
    :class:`~repro.cluster.backends.remote.RemoteBackend` -- ``repro-worker``
    TCP servers, possibly on other machines (the paper's actual deployment
    shape); needs a ``hosts`` option listing the worker addresses (see
    :func:`repro.cluster.worker.spawn_local_workers` for a loopback pool).
``"simulated"``
    :class:`~repro.cluster.simcluster.simulator.SimulatedClusterBackend` -- the
    discrete-event cluster model reproducing the paper's tables; accepts
    ``comm`` (a :class:`~repro.cluster.simcluster.comm.CommunicationModel`),
    ``execute`` and ``node_speed`` options.

Use :func:`create_backend` to build one, :func:`list_backends` to enumerate
the registered names and :func:`register_backend` (usable as a decorator
factory) to plug in a new engine without touching this module; the
backend-author guide in ``docs/backends.md`` walks through writing one.

Every factory is called as ``factory(n_workers=..., strategy=..., **options)``;
factories are free to ignore arguments that do not apply to them (the
sequential backend has no use for a transmission strategy, for instance).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.backends.base import (
    PAYLOAD_PATH,
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.cluster.backends.execution import execute_payload, materialize_problem
from repro.cluster.backends.local import SequentialBackend
from repro.cluster.backends.multiproc import MultiprocessingBackend
from repro.errors import ClusterError

__all__ = [
    "Job",
    "PreparedMessage",
    "CompletedJob",
    "BackendStats",
    "WorkerBackend",
    "SequentialBackend",
    "MultiprocessingBackend",
    "execute_payload",
    "materialize_problem",
    "PAYLOAD_SERIAL",
    "PAYLOAD_PATH",
    "PAYLOAD_PROBLEM",
    "BackendFactory",
    "register_backend",
    "create_backend",
    "list_backends",
]

#: signature of a registered backend factory
BackendFactory = Callable[..., WorkerBackend]

_BACKEND_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory | None = None):
    """Register a backend factory under ``name``.

    Either call directly (``register_backend("local", make_local)``) or use as
    a decorator factory::

        @register_backend("my_cluster")
        def make_my_cluster(n_workers=2, strategy="serialized_load", **options):
            return MyClusterBackend(n_workers, **options)
    """
    if not name:
        raise ClusterError("backend names must be non-empty strings")

    def _register(fn: BackendFactory) -> BackendFactory:
        _BACKEND_REGISTRY[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def list_backends() -> list[str]:
    """Names of all registered execution backends (including aliases)."""
    return sorted(_BACKEND_REGISTRY)


def create_backend(
    name: str,
    *,
    n_workers: int = 2,
    strategy: str = "serialized_load",
    **options: Any,
) -> WorkerBackend:
    """Build a backend from its registered name.

    ``strategy`` is forwarded because the simulated backend prices its
    communication from the transmission strategy; executing backends ignore it.
    """
    if name not in _BACKEND_REGISTRY:
        raise ClusterError(
            f"unknown backend {name!r}; registered backends: {list_backends()}"
        )
    return _BACKEND_REGISTRY[name](n_workers=n_workers, strategy=strategy, **options)


@register_backend("local")
@register_backend("sequential")
def _make_sequential(
    n_workers: int = 1, strategy: str = "serialized_load", **options: Any
) -> WorkerBackend:
    return SequentialBackend(n_workers=n_workers, **options)


@register_backend("multiprocessing")
def _make_multiprocessing(
    n_workers: int = 2, strategy: str = "serialized_load", **options: Any
) -> WorkerBackend:
    return MultiprocessingBackend(n_workers=n_workers, **options)


@register_backend("remote")
def _make_remote(
    n_workers: int = 2,
    strategy: str = "serialized_load",
    hosts: Any = None,
    connect_timeout: float = 10.0,
    send_timeout: float = 60.0,
    reconnect: Any = None,
    liveness_timeout: float | None = None,
    secret: str | None = None,
    **options: Any,
) -> WorkerBackend:
    # imported lazily so plain backend users do not pay for the socket layer
    from repro.cluster.backends.remote import RemoteBackend

    if hosts is None:
        raise ClusterError(
            "the remote backend needs a 'hosts' option listing the worker "
            "addresses, e.g. create_backend('remote', hosts=['10.0.0.4:9631']); "
            "use repro.cluster.worker.spawn_local_workers for a loopback pool"
        )
    # one logical worker per address: the addresses, not n_workers, size the pool
    return RemoteBackend(
        hosts,
        connect_timeout=connect_timeout,
        send_timeout=send_timeout,
        reconnect=reconnect,
        liveness_timeout=liveness_timeout,
        secret=secret,
    )


@register_backend("simulated")
def _make_simulated(
    n_workers: int = 2,
    strategy: str = "serialized_load",
    node_speed: float = 1.0,
    **options: Any,
) -> WorkerBackend:
    # imported lazily: the simulator pulls in the whole simcluster package,
    # which plain backend users (and `import repro`) should not pay for
    from repro.cluster.simcluster.node import ClusterSpec
    from repro.cluster.simcluster.simulator import SimulatedClusterBackend

    spec = ClusterSpec.from_cpu_count(n_workers + 1, speed=node_speed)
    return SimulatedClusterBackend(spec, strategy=strategy, **options)
