"""Execution backends implementing the master/worker interface."""

from repro.cluster.backends.base import (
    PAYLOAD_PATH,
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.cluster.backends.execution import execute_payload, materialize_problem
from repro.cluster.backends.local import SequentialBackend
from repro.cluster.backends.multiproc import MultiprocessingBackend

__all__ = [
    "Job",
    "PreparedMessage",
    "CompletedJob",
    "BackendStats",
    "WorkerBackend",
    "SequentialBackend",
    "MultiprocessingBackend",
    "execute_payload",
    "materialize_problem",
    "PAYLOAD_SERIAL",
    "PAYLOAD_PATH",
    "PAYLOAD_PROBLEM",
]
