"""Sequential in-process backend.

Executes every job immediately in the master process.  It is the reference
backend for correctness tests (the parallel backends must return exactly the
same prices) and the natural choice for very small portfolios where process
start-up would dominate.
"""

from __future__ import annotations

import os
import time

from repro.cluster.backends.base import (
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.cluster.backends.execution import execute_payload, make_worker_cache
from repro.cluster.shm import (
    SHM_MIN_BYTES,
    SegmentRegistry,
    decode_result,
    encode_result,
    shm_available,
)
from repro.errors import ClusterError

__all__ = ["SequentialBackend"]


class SequentialBackend(WorkerBackend):
    """Run jobs one by one in the calling process.

    ``n_workers`` pretends to be the requested pool size so that schedulers
    behave identically, but every dispatch executes synchronously.
    ``cache_dir`` (optional) points at a shared on-disk result cache checked
    before each computation (see :mod:`repro.pricing.cache`).

    ``use_shm`` (default off -- there is no process boundary to cross)
    routes large result arrays through the same
    :mod:`multiprocessing.shared_memory` publish/consume cycle as the
    multiprocessing backend, so transport behaviour can be exercised and
    audited without spawning workers.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache_dir: str | None = None,
        use_shm: bool = False,
        shm_min_bytes: int = SHM_MIN_BYTES,
    ):
        if n_workers < 1:
            raise ClusterError("n_workers must be >= 1")
        if use_shm and not shm_available():
            raise ClusterError("use_shm=True but shared memory is unavailable here")
        self._n_workers = int(n_workers)
        self._cache = make_worker_cache(cache_dir)
        self._registry = SegmentRegistry(f"rshm{os.getpid()}s") if use_shm else None
        self._shm_min_bytes = int(shm_min_bytes)
        self._pending: list[CompletedJob] = []
        self._start = time.perf_counter()
        self._n_jobs = 0
        self._busy: dict[int, float] = {i: 0.0 for i in range(self._n_workers)}
        self._bytes_sent = 0
        self._finalized = False

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def on_run_start(self, n_jobs: int) -> None:
        self._start = time.perf_counter()

    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage) -> None:
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        result, elapsed, error = execute_payload(message.kind, message.payload, cache=self._cache)
        if self._registry is not None and error is None:
            # full publish -> handle -> consume cycle, same as the worker
            # transport, to keep the shm path honest under the tier-1 suite
            result = decode_result(
                encode_result(result, self._registry, self._shm_min_bytes),
                self._registry,
            )
        self._busy[worker_id] += elapsed
        self._bytes_sent += message.nbytes
        self._n_jobs += 1
        self._pending.append(
            CompletedJob(
                job_id=job.job_id,
                worker_id=worker_id,
                result=result,
                compute_time=elapsed,
                collected_at=time.perf_counter() - self._start,
                error=error,
            )
        )

    def collect(self, timeout: float | None = None) -> CompletedJob:
        if not self._pending:
            raise ClusterError("no job in flight")
        return self._pending.pop(0)

    def poll(self) -> bool:
        return bool(self._pending)

    def finalize(self) -> BackendStats:
        self._finalized = True
        if self._registry is not None:
            self._registry.close()
        total = time.perf_counter() - self._start
        return BackendStats(
            total_time=total,
            n_jobs=self._n_jobs,
            n_workers=self._n_workers,
            worker_busy=dict(self._busy),
            master_busy=total,
            bytes_sent=self._bytes_sent,
        )
