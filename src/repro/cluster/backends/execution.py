"""Worker-side job execution shared by the real backends.

Both the sequential backend and the multiprocessing workers run the same
three code paths as the paper's slave script (Fig. 4):

* receive serialized bytes, unpack/unserialize, rebuild the problem
  (*full load* and *serialized load* strategies);
* receive a file name and read the problem from the shared file system
  (*NFS* strategy);
* receive an in-memory problem object (sequential backend / tests).

After rebuilding the problem the worker calls ``compute()`` and returns the
result as a plain dictionary, which is what ``MPI_Send_Obj(L(1)(3), 0, ...)``
ships back in the paper's script.
"""

from __future__ import annotations

import time
from typing import Any

from repro.cluster.backends.base import PAYLOAD_PATH, PAYLOAD_PROBLEM, PAYLOAD_SERIAL
from repro.errors import ClusterError
from repro.pricing.engine import PricingProblem
from repro.serial import Serial
from repro.serial import load as load_problem_file

__all__ = ["materialize_problem", "execute_payload"]


def materialize_problem(kind: str, payload: Any) -> PricingProblem:
    """Rebuild a :class:`PricingProblem` from a transmitted payload."""
    if kind == PAYLOAD_PROBLEM:
        problem = payload
    elif kind == PAYLOAD_SERIAL:
        if isinstance(payload, Serial):
            problem = payload.unserialize()
        else:
            problem = Serial.from_bytes(payload).unserialize()
    elif kind == PAYLOAD_PATH:
        problem = load_problem_file(payload)
    else:
        raise ClusterError(f"unknown payload kind {kind!r}")
    if not isinstance(problem, PricingProblem):
        raise ClusterError(
            f"payload decoded to {type(problem).__name__}, expected a PricingProblem"
        )
    return problem


def execute_payload(kind: str, payload: Any) -> tuple[dict[str, Any] | None, float, str | None]:
    """Rebuild and compute a problem.

    Returns ``(result_dict, compute_seconds, error_message)``; errors are
    captured rather than raised so a single bad problem does not bring the
    whole worker down (the master records the error in the run report).
    """
    start = time.perf_counter()
    try:
        problem = materialize_problem(kind, payload)
        result = problem.compute()
        elapsed = time.perf_counter() - start
        return result.as_dict(), elapsed, None
    except Exception as exc:  # noqa: BLE001 - worker must survive bad jobs
        elapsed = time.perf_counter() - start
        return None, elapsed, f"{type(exc).__name__}: {exc}"
