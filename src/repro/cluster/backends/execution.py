"""Worker-side job execution shared by the real backends.

Both the sequential backend and the multiprocessing workers run the same
three code paths as the paper's slave script (Fig. 4):

* receive serialized bytes, unpack/unserialize, rebuild the problem
  (*full load* and *serialized load* strategies);
* receive a file name and read the problem from the shared file system
  (*NFS* strategy);
* receive an in-memory problem object (sequential backend / tests).

After rebuilding the problem the worker calls ``compute()`` and returns the
result as a plain dictionary, which is what ``MPI_Send_Obj(L(1)(3), 0, ...)``
ships back in the paper's script.

Two extensions ride on the same payload plumbing:

* a payload may decode to a :class:`~repro.pricing.batch.ProblemBatch` -- a
  whole shared-simulation family shipped as one message; the worker prices
  every member against one path set and returns a ``{"batch": True,
  "results": {...}}`` dictionary which the session expands back into
  per-position results;
* an optional worker-side :class:`~repro.pricing.cache.ResultCache` answers
  digest hits without pricing (hits are marked ``"cache_hit": True`` so hit
  rates can be reported).
"""

from __future__ import annotations

import time
from typing import Any

from repro.cluster.backends.base import PAYLOAD_PATH, PAYLOAD_PROBLEM, PAYLOAD_SERIAL
from repro.errors import ClusterError
from repro.pricing.batch import ProblemBatch
from repro.pricing.cache import ResultCache, problem_digest
from repro.pricing.engine import PricingProblem
from repro.serial import Serial
from repro.serial import load as load_problem_file

__all__ = ["materialize_problem", "execute_payload", "make_worker_cache"]


def make_worker_cache(cache_dir: str | None) -> ResultCache | None:
    """Build the disk-backed worker cache for a ``cache_dir`` option."""
    if not cache_dir:
        return None
    return ResultCache(directory=cache_dir)


def materialize_problem(kind: str, payload: Any) -> PricingProblem | ProblemBatch:
    """Rebuild a :class:`PricingProblem` (or a whole :class:`ProblemBatch`)
    from a transmitted payload."""
    if kind == PAYLOAD_PROBLEM:
        problem = payload
    elif kind == PAYLOAD_SERIAL:
        if isinstance(payload, Serial):
            problem = payload.unserialize()
        else:
            problem = Serial.from_bytes(payload).unserialize()
    elif kind == PAYLOAD_PATH:
        problem = load_problem_file(payload)
    else:
        raise ClusterError(f"unknown payload kind {kind!r}")
    if not isinstance(problem, (PricingProblem, ProblemBatch)):
        raise ClusterError(
            f"payload decoded to {type(problem).__name__}, expected a "
            f"PricingProblem or a ProblemBatch"
        )
    return problem


def execute_payload(
    kind: str, payload: Any, cache: ResultCache | None = None
) -> tuple[dict[str, Any] | None, float, str | None]:
    """Rebuild and compute a problem (or a shared-simulation batch).

    Returns ``(result_dict, compute_seconds, error_message)``; errors are
    captured rather than raised so a single bad problem does not bring the
    whole worker down (the master records the error in the run report).
    """
    start = time.perf_counter()
    try:
        problem = materialize_problem(kind, payload)
        if isinstance(problem, ProblemBatch):
            member_results = problem.compute(cache=cache)
            elapsed = time.perf_counter() - start
            result = {
                "batch": True,
                "n_members": len(problem),
                "results": {str(key): entry for key, entry in member_results.items()},
            }
            return result, elapsed, None
        if cache is not None:
            cached = cache.get(problem_digest(problem))
            if cached is not None:
                elapsed = time.perf_counter() - start
                entry = cached.as_dict()
                entry["cache_hit"] = True
                return entry, elapsed, None
        result = problem.compute()
        if cache is not None:
            cache.put(problem_digest(problem), result)
        elapsed = time.perf_counter() - start
        return result.as_dict(), elapsed, None
    except Exception as exc:  # noqa: BLE001 - worker must survive bad jobs
        elapsed = time.perf_counter() - start
        return None, elapsed, f"{type(exc).__name__}: {exc}"
