"""Remote TCP execution backend: the paper's MPI pool over real sockets.

This is the first backend that crosses a machine boundary.  Each worker is a
``repro-worker`` server (:mod:`repro.cluster.worker`) -- possibly on another
host -- and the master keeps one TCP connection per worker, shipping jobs as
length-prefixed XDR frames (:mod:`repro.serial.frames`) and collecting
result frames with :mod:`selectors`:

* :meth:`RemoteBackend.dispatch` serializes the prepared payload into one
  ``FRAME_JOB`` message -- ``MPI_Send_Obj`` in the paper's master script;
* :meth:`RemoteBackend.collect` blocks on the selector until any connection
  delivers a ``FRAME_RESULT`` -- ``MPI_Probe(-1, -1, ...)`` then
  ``MPI_Recv_Obj``;
* :meth:`RemoteBackend.poll` / :meth:`~RemoteBackend.try_collect` drain
  whatever already arrived without blocking -- ``MPI_Iprobe`` -- which is
  all the streaming futures API needs to work over the wire unchanged.

The pool is *elastic*, not just damage-tolerant:

* **death** -- the master keeps the wire entry of every in-flight job, so
  when a connection drops its jobs are redispatched to the surviving
  workers and the run completes (the freed logical worker slot is remapped
  onto a live connection);
* **rebirth** -- with a :class:`ReconnectPolicy` a dead host is re-dialed
  from the blocking calls (capped exponential backoff, bounded attempts)
  and, once back, gets its original logical slots again;
* **growth/shrinkage** -- :meth:`RemoteBackend.attach_host` /
  :meth:`~RemoteBackend.detach_host` add and retire capacity mid-run;
* **liveness** -- a ``liveness_timeout`` turns a wedged-but-connected worker
  (one that answers neither a :data:`~repro.serial.frames.FRAME_PING` nor a
  result inside the window) into an ordinary death within seconds, instead
  of stalling ``collect`` for its full timeout;
* **identity** -- a ``secret`` arms the protocol-v4 HMAC-SHA256 handshake,
  so the master only dispatches jobs to workers that proved knowledge of
  the shared secret (and vice versa).

Only when the whole pool is gone *and* cannot come back does a retryable
:class:`~repro.errors.WorkerLostError` surface, carrying the ids of the
jobs that were in flight so a caller (or the session-layer
:class:`~repro.api.config.RetryPolicy`) can resubmit them against fresh
workers.

Build one through the registry --
``create_backend("remote", hosts=["10.0.0.4:9631", ...])`` or
``BackendSpec(name="remote", options={"hosts": [...]})`` -- and use
:func:`repro.cluster.worker.spawn_local_workers` for a loopback pool.
"""

from __future__ import annotations

import os
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.cluster.backends.base import (
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.errors import ClusterError, CollectTimeoutError, SerializationError, WorkerLostError
from repro.serial import Serial, serialize, xdr
from repro.serial.frames import (
    FRAME_AUTH,
    FRAME_CHALLENGE,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_JOB_BATCH,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_RESULT_BATCH,
    FRAME_STOP,
    PROTOCOL_VERSION,
    FrameAssembler,
    auth_proof,
    encode_frame,
    read_frame,
    verify_proof,
)

__all__ = ["ReconnectPolicy", "RemoteBackend", "normalize_hosts"]

_RECV_BYTES = 1 << 16

#: sentinel ``conn_index`` of an orphaned in-flight job awaiting redispatch
_UNROUTED = -1


def normalize_hosts(hosts: Any) -> tuple[str, ...]:
    """Normalise a user-supplied worker address list to ``"host:port"`` strings.

    Accepts an iterable of ``"host:port"`` strings or ``(host, port)``
    pairs.  The result is a plain tuple of strings -- hashable, so it can
    live inside a frozen :class:`~repro.api.config.BackendSpec`.
    """
    if isinstance(hosts, str):
        hosts = [hosts]
    if not isinstance(hosts, Iterable):
        raise ClusterError(
            f"hosts must be a list of 'host:port' strings or (host, port) "
            f"pairs, got {type(hosts).__name__}"
        )
    normalized: list[str] = []
    for entry in hosts:
        if isinstance(entry, str):
            host, sep, port_text = entry.rpartition(":")
            if not sep or not host:
                raise ClusterError(f"worker address {entry!r} is not 'host:port'")
        elif isinstance(entry, Sequence) and len(entry) == 2:
            host, port_text = str(entry[0]), str(entry[1])
        else:
            raise ClusterError(
                f"worker address {entry!r} is neither 'host:port' nor a "
                f"(host, port) pair"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ClusterError(f"invalid port in worker address {entry!r}") from None
        if not 0 < port < 65536:
            raise ClusterError(f"port {port} out of range in worker address {entry!r}")
        normalized.append(f"{host}:{port}")
    if not normalized:
        raise ClusterError("the remote backend needs at least one worker address")
    return tuple(normalized)


@dataclass(frozen=True)
class ReconnectPolicy:
    """How (and how hard) the master re-dials a dead worker host.

    A host that drops mid-run is retried with capped exponential backoff:
    the ``k``-th dial waits ``initial_backoff * backoff_factor**(k-1)``
    seconds (at most ``max_backoff``) after the previous failure, for up to
    ``max_attempts`` dials.  Re-dialing happens from the *blocking* backend
    calls (``dispatch``/``collect``), never from ``poll()``, so the
    non-blocking surface stays non-blocking.  A host that comes back gets
    its original logical worker slots again; one that exhausts its attempts
    stays buried, and only when *no* host is live or re-dialable does
    :class:`~repro.errors.WorkerLostError` surface.
    """

    max_attempts: int = 5
    initial_backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError("ReconnectPolicy needs max_attempts >= 1")
        if self.initial_backoff < 0:
            raise ClusterError("ReconnectPolicy needs initial_backoff >= 0")
        if self.backoff_factor < 1.0:
            raise ClusterError("ReconnectPolicy needs backoff_factor >= 1")
        if self.max_backoff < self.initial_backoff:
            raise ClusterError(
                "ReconnectPolicy needs max_backoff >= initial_backoff"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before dial number ``attempt`` (1-based)."""
        return min(
            self.max_backoff,
            self.initial_backoff * self.backoff_factor ** max(0, attempt - 1),
        )


def _coerce_reconnect(value: Any) -> ReconnectPolicy | None:
    """Accept the spellings a backend option can arrive in."""
    if value is None or value is False:
        return None
    if value is True:
        return ReconnectPolicy()
    if isinstance(value, ReconnectPolicy):
        return value
    if isinstance(value, int):
        return ReconnectPolicy(max_attempts=value)
    if isinstance(value, Mapping):
        return ReconnectPolicy(**value)
    raise ClusterError(
        f"reconnect must be a ReconnectPolicy, True, a max-attempts int or "
        f"a mapping of policy fields, got {type(value).__name__}"
    )


@dataclass
class _Connection:
    """Master-side state of one worker link."""

    address: str
    sock: socket.socket
    assembler: FrameAssembler = field(default_factory=FrameAssembler)
    #: protocol version this peer greeted with (frames to it are encoded at
    #: this version, so a v3 worker keeps working under a v4 master)
    version: int = PROTOCOL_VERSION
    alive: bool = True
    stop_sent: bool = False
    #: detached on purpose -- never re-dialed by the reconnect policy
    detached: bool = False
    #: monotonic time of the last byte received (liveness bookkeeping)
    last_recv: float = 0.0
    #: outstanding liveness-ping token (None when not probing)
    ping_token: bytes | None = None
    ping_sent: float = 0.0


@dataclass
class _ReconnectState:
    """Backoff bookkeeping for one dead, re-dialable connection slot."""

    attempts: int = 0  # failed dials so far
    next_try: float = 0.0  # monotonic time of the next allowed dial


@dataclass
class _InFlight:
    """A dispatched, not-yet-answered job (kept for redispatch on death).

    Every record keeps the wire ``entry`` dictionary (chunk members share
    payload bytes with their batch frame); the solo frame is encoded
    lazily -- at the receiving connection's protocol version -- on the
    dispatch and death-redispatch paths.
    """

    worker_id: int
    conn_index: int
    entry: dict[str, Any]
    frame: bytes | None = None

    def frame_for(self, version: int) -> bytes:
        if version != PROTOCOL_VERSION:
            # rare (old-protocol peer): encode fresh, don't poison the cache
            return encode_frame(FRAME_JOB, xdr.encode(self.entry), version=version)
        if self.frame is None:
            self.frame = encode_frame(FRAME_JOB, xdr.encode(self.entry))
        return self.frame


class RemoteBackend(WorkerBackend):
    """Master-side driver of a pool of ``repro-worker`` TCP servers.

    Parameters
    ----------
    hosts:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs); one logical worker per address.  The scheduler-facing
        ``n_workers`` is ``len(hosts)`` (plus any :meth:`attach_host`).
    connect_timeout:
        Seconds allowed for each TCP connect + protocol handshake (also
        per reconnect dial).
    send_timeout:
        Seconds a single frame send may block before the worker is declared
        lost (its jobs are requeued).  Bounds ``collect(timeout=...)``: a
        network-partitioned worker whose TCP buffer filled up cannot hang
        the master forever on ``sendall``.
    reconnect:
        ``None`` (default) keeps the PR-4 behaviour: a dead host stays
        dead.  A :class:`ReconnectPolicy` (or ``True`` for the defaults, an
        int for ``max_attempts``, or a mapping of policy fields) re-dials
        dead hosts from the blocking calls and remaps their logical slots
        back on success.
    liveness_timeout:
        Seconds of in-campaign silence after which a connection with jobs
        in flight is PINGed; a worker that then answers neither the pong
        nor a result within another window is buried like a dropped
        socket.  ``None`` disables the probe (a wedged worker then costs
        the full ``collect`` timeout).
    secret:
        Shared secret arming the protocol-v4 HMAC-SHA256 handshake: every
        worker must prove knowledge of the secret at connect time, before
        any job is dispatched.  Workers that require a secret are refused
        when ``secret`` is ``None`` -- loudly, at connect.
    """

    def __init__(
        self,
        hosts: Any,
        connect_timeout: float = 10.0,
        send_timeout: float = 60.0,
        *,
        reconnect: Any = None,
        liveness_timeout: float | None = None,
        secret: str | None = None,
    ):
        addresses = normalize_hosts(hosts)
        if liveness_timeout is not None and liveness_timeout <= 0:
            raise ClusterError("liveness_timeout must be positive (or None)")
        self._n_workers = len(addresses)
        self._connect_timeout = connect_timeout
        self._send_timeout = send_timeout
        self._reconnect_policy = _coerce_reconnect(reconnect)
        self._liveness_timeout = liveness_timeout
        self._secret = secret
        self._selector = selectors.DefaultSelector()
        self._conns: list[_Connection] = []
        #: logical worker id -> index into ``_conns`` (remapped on death)
        self._route: list[int] = list(range(self._n_workers))
        #: logical worker id -> its *original* connection slot, so a host
        #: that reconnects gets its own slots back instead of staying a
        #: spectator behind the remapped survivors
        self._home: list[int] = list(range(self._n_workers))
        #: conn index -> backoff state of a pending re-dial
        self._redial: dict[int, _ReconnectState] = {}
        self._inflight: dict[int, _InFlight] = {}
        #: orphaned job ids awaiting redispatch; flushed only from blocking
        #: calls (dispatch/collect) so poll() can never stall on a send
        self._redispatch: list[int] = []
        self._ready: list[CompletedJob] = []
        #: conn index -> token of the last pong received (see ping_workers)
        self._pongs: dict[int, bytes] = {}
        self._n_jobs = 0
        self._bytes_sent = 0
        self._reconnects = 0
        self._redispatches = 0
        self._liveness_buried = 0
        self._busy: dict[int, float] = {i: 0.0 for i in range(self._n_workers)}
        self._start = time.perf_counter()
        self._finalized = False
        try:
            for index, address in enumerate(addresses):
                conn = self._connect(address, connect_timeout)
                self._conns.append(conn)
                self._selector.register(conn.sock, selectors.EVENT_READ, index)
        except Exception:
            for conn in self._conns:
                conn.sock.close()
            self._selector.close()
            raise

    def _connect(self, address: str, timeout: float) -> _Connection:
        host, _, port_text = address.rpartition(":")
        try:
            sock = socket.create_connection((host, int(port_text)), timeout=timeout)
        except OSError as exc:
            raise ClusterError(f"cannot connect to worker {address}: {exc}") from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # the worker greets first; a version mismatch fails here, loudly,
            # before any job is dispatched
            frame = read_frame(sock.recv)
            if frame is None or frame[0] != FRAME_HELLO:
                raise ClusterError(
                    f"worker {address} did not greet with a hello frame "
                    f"(is it a repro-worker?)"
                )
            version = self._handshake(sock, address, frame[1])
        except (SerializationError, OSError) as exc:
            # OSError covers the silent peer: connect_timeout is still armed,
            # so a listener that never greets surfaces here, wrapped
            sock.close()
            raise ClusterError(f"handshake with worker {address} failed: {exc}") from exc
        except Exception:
            sock.close()
            raise
        # bounds every later sendall; recv never blocks on it because the
        # selector only hands over sockets with data pending
        sock.settimeout(self._send_timeout)
        return _Connection(
            address=address, sock=sock, version=version, last_recv=time.monotonic()
        )

    def _handshake(self, sock: socket.socket, address: str, hello: bytes) -> int:
        """Finish the greeting: negotiate the version, run the v4 auth.

        Returns the protocol version to *speak* on this connection (the
        worker's hello version, capped at ours).  Raises
        :class:`~repro.errors.ClusterError` on any authentication problem --
        before a single job frame is sent.
        """
        try:
            greeting = xdr.decode(hello)
        except SerializationError:
            greeting = {}
        if not isinstance(greeting, dict):
            greeting = {}
        try:
            version = int(greeting.get("version", PROTOCOL_VERSION))
        except (TypeError, ValueError):
            version = PROTOCOL_VERSION
        version = min(version, PROTOCOL_VERSION)
        requires_secret = bool(greeting.get("auth", False))
        if self._secret is None:
            if requires_secret:
                raise ClusterError(
                    f"worker {address} requires a shared secret; pass "
                    f"secret=... to the remote backend (or unset the "
                    f"worker's --secret)"
                )
            return version
        worker_nonce = greeting.get("nonce")
        if version < 4 or not isinstance(worker_nonce, bytes):
            raise ClusterError(
                f"this master requires a shared secret, but worker {address} "
                f"speaks protocol v{version} without handshake support; "
                f"upgrade the worker or drop the secret"
            )
        master_nonce = os.urandom(16)
        sock.sendall(
            encode_frame(
                FRAME_CHALLENGE,
                xdr.encode(
                    {
                        "nonce": master_nonce,
                        "proof": auth_proof(self._secret, worker_nonce),
                    }
                ),
            )
        )
        answer = read_frame(sock.recv)
        if answer is None or answer[0] != FRAME_AUTH:
            raise ClusterError(
                f"worker {address} refused the shared-secret handshake "
                f"(secret mismatch, or the worker has no --secret configured)"
            )
        try:
            proof = xdr.decode(answer[1]).get("proof")
        except (SerializationError, AttributeError):
            proof = None
        if not verify_proof(self._secret, master_nonce, proof):
            raise ClusterError(
                f"worker {address} failed the shared-secret handshake "
                f"(wrong secret)"
            )
        return version

    # -- WorkerBackend contract --------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def reconnects(self) -> int:
        """Dead hosts successfully re-dialed so far."""
        return self._reconnects

    @property
    def redispatches(self) -> int:
        """Orphaned in-flight jobs re-sent to another connection so far."""
        return self._redispatches

    def on_run_start(self, n_jobs: int) -> None:
        self._start = time.perf_counter()

    @staticmethod
    def _wire_entry(job: Job, message: PreparedMessage) -> dict[str, Any]:
        """The XDR-encodable job dictionary a worker expects on the wire."""
        kind, payload = message.kind, message.payload
        if kind == PAYLOAD_PROBLEM:
            # in-memory objects cannot cross the wire as such; ship them
            # serialized (the worker-side decode path is identical)
            payload = serialize(payload).to_bytes()
            kind = PAYLOAD_SERIAL
        elif isinstance(payload, Serial):
            payload = payload.to_bytes()
        return {"job_id": job.job_id, "kind": kind, "payload": payload}

    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage) -> None:
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        record = _InFlight(worker_id, _UNROUTED, entry=self._wire_entry(job, message))
        self._n_jobs += 1
        self._send(job.job_id, record)
        self._maybe_reconnect()
        self._flush_redispatch()

    def dispatch_batch(
        self,
        worker_id: int,
        jobs: list[Job],
        messages: list[PreparedMessage] | None = None,
    ) -> None:
        """Ship a whole chunk as **one** TCP frame (chunked scheduling).

        A protocol-v5 worker answers the chunk with one coalesced
        :data:`~repro.serial.frames.FRAME_RESULT_BATCH` message; older
        workers send one result frame per member.  Either way, for death
        recovery each member is tracked with its own single-job entry: if
        the connection dies mid-chunk, the unanswered members are
        redispatched individually to the survivors (an answered member is
        never re-sent).
        """
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        if messages is None or len(messages) != len(jobs):
            raise ClusterError("remote workers need one prepared payload per job")
        entries = [
            self._wire_entry(job, message) for job, message in zip(jobs, messages)
        ]
        conn_index = self._route_for(worker_id)
        if conn_index is None:
            # no live connection right now: park every member; the next
            # blocking call redispatches them once a host is back
            self._n_jobs += len(entries)
            for entry in entries:
                self._park(int(entry["job_id"]), _InFlight(worker_id, _UNROUTED, entry))
            if not self._reconnect_pending():
                self._raise_pool_lost()
            return
        conn = self._conns[conn_index]
        try:
            frame = encode_frame(
                FRAME_JOB_BATCH, xdr.encode({"jobs": entries}), version=conn.version
            )
        except SerializationError:
            # the combined chunk overflows the frame-size guard; individual
            # jobs may still fit, so degrade to per-job dispatch rather than
            # kill a run that per-job framing completes
            for job, message in zip(jobs, messages):
                self.dispatch(worker_id, job, message)
            return
        self._n_jobs += len(jobs)
        for entry in entries:
            # the solo redispatch frame is only built if the connection dies
            self._inflight[int(entry["job_id"])] = _InFlight(
                worker_id, conn_index, entry
            )
        try:
            conn.sock.sendall(frame)
            self._bytes_sent += len(frame)
        except OSError:
            self._on_conn_dead(conn_index)
        self._flush_redispatch()

    def collect(self, timeout: float | None = 300.0) -> CompletedJob:
        if not self._ready and not self._inflight:
            raise ClusterError("no job in flight")
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._ready:
            self._maybe_reconnect()
            self._flush_redispatch()
            self._check_liveness()
            if self._ready:
                break  # a liveness burial can orphan+answer via redispatch
            if deadline is None:
                wait: float | None = None
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    raise CollectTimeoutError(
                        f"timed out after {timeout}s waiting for a remote worker result"
                    )
            if not self._live_indices():
                # nothing to select on: sleep toward the next re-dial
                if not self._reconnect_pending():
                    self._raise_pool_lost()
                pause = max(0.0, self._next_redial_at() - time.monotonic())
                if wait is not None:
                    pause = min(pause, wait)
                time.sleep(min(max(pause, 0.005), 0.5))
                continue
            self._pump(self._cap_wait(wait))
        return self._ready.pop(0)

    def _cap_wait(self, wait: float | None) -> float | None:
        """Bound a selector wait so liveness/reconnect timers keep firing."""
        caps = [wait] if wait is not None else []
        if self._liveness_timeout is not None:
            caps.append(max(self._liveness_timeout / 4.0, 0.01))
        if self._reconnect_pending():
            caps.append(max(self._next_redial_at() - time.monotonic(), 0.01))
        return min(caps) if caps else None

    def poll(self) -> bool:
        if self._inflight:
            self._pump(0.0)
        return bool(self._ready)

    def try_collect(self) -> CompletedJob | None:
        if self.poll():
            return self._ready.pop(0)
        return None

    def ping_workers(self, timeout: float = 5.0) -> dict[str, bool]:
        """Keepalive-probe every live connection; return address -> alive.

        Sends a :data:`FRAME_PING` with a fresh token down each live
        connection and waits up to ``timeout`` seconds for the matching
        pongs.  A connection that fails the send or stays silent is declared
        dead exactly as if it had dropped mid-campaign: its in-flight jobs
        (if any) are requeued to the survivors.  This is how a long-lived
        master notices dead TCP workers *between* campaigns, when no result
        traffic would expose them.  Addresses whose connection was already
        buried report ``False``.
        """
        if self._finalized:
            raise ClusterError("backend already finalized")
        token = os.urandom(8)
        pending: set[int] = set()
        for index in self._live_indices():
            self._pongs.pop(index, None)
            conn = self._conns[index]
            try:
                conn.sock.sendall(
                    encode_frame(FRAME_PING, token, version=conn.version)
                )
            except OSError:
                self._on_conn_dead(index)
                continue
            pending.add(index)
        deadline = time.monotonic() + timeout
        while pending:
            answered = {i for i in pending if self._pongs.get(i) == token}
            pending -= answered
            if not pending:
                break
            wait = deadline - time.monotonic()
            if wait <= 0:
                for index in sorted(pending):
                    # silent past the deadline: bury it like a dropped socket
                    self._on_conn_dead(index)
                break
            self._pump(wait)
        live = set(self._live_indices())
        return {
            conn.address: index in live for index, conn in enumerate(self._conns)
        }

    # -- elasticity ---------------------------------------------------------------
    def attach_host(self, address: Any, *, connect_timeout: float | None = None) -> int:
        """Connect one more worker host mid-run; return its logical worker id.

        The pool grows: ``n_workers`` increases by one and the new id routes
        to the fresh connection.  Schedulers that planned against the old
        ``n_workers`` simply ignore the extra slot until their next plan;
        redispatched orphans and new streams use it immediately.
        """
        if self._finalized:
            raise ClusterError("backend already finalized")
        normalized = normalize_hosts([address])[0]
        conn = self._connect(
            normalized,
            self._connect_timeout if connect_timeout is None else connect_timeout,
        )
        index = len(self._conns)
        self._conns.append(conn)
        self._selector.register(conn.sock, selectors.EVENT_READ, index)
        worker_id = self._n_workers
        self._n_workers += 1
        self._route.append(index)
        self._home.append(index)
        self._busy[worker_id] = 0.0
        return worker_id

    def detach_host(self, address: Any) -> bool:
        """Retire one worker host mid-run; ``True`` if a connection matched.

        The connection gets a clean stop frame and is buried like a death --
        its in-flight jobs are redispatched to the survivors -- but it is
        marked *detached*, so a reconnect policy never re-dials it.  The
        logical slot stays (remapped onto survivors); detaching the last
        live host while jobs are in flight raises
        :class:`~repro.errors.WorkerLostError` unless a reconnect of some
        other host is still possible.
        """
        if self._finalized:
            raise ClusterError("backend already finalized")
        normalized = normalize_hosts([address])[0]
        found = False
        for index, conn in enumerate(self._conns):
            if conn.address != normalized or conn.detached:
                continue
            conn.detached = True
            self._redial.pop(index, None)  # a pending re-dial is cancelled too
            found = True
            if conn.alive:
                self._stop_conn(conn)
                self._on_conn_dead(index)
        return found

    def send_stop(self, worker_id: int) -> None:
        conn = self._conns[self._route[worker_id]]
        self._stop_conn(conn)

    def finalize(self) -> BackendStats:
        if not self._finalized:
            self._finalized = True
            self._redial.clear()
            for conn in self._conns:
                self._stop_conn(conn)
                if conn.alive:
                    try:
                        self._selector.unregister(conn.sock)
                    except (KeyError, ValueError):  # pragma: no cover - defensive
                        pass
                    conn.sock.close()
                    conn.alive = False
            self._selector.close()
        total = time.perf_counter() - self._start
        return BackendStats(
            total_time=total,
            n_jobs=self._n_jobs,
            n_workers=self._n_workers,
            worker_busy=dict(self._busy),
            master_busy=total,
            bytes_sent=self._bytes_sent,
            extra={
                "hosts": [conn.address for conn in self._conns],
                "reconnects": self._reconnects,
                "redispatches": self._redispatches,
                "liveness_buried": self._liveness_buried,
            },
        )

    # -- wire plumbing -----------------------------------------------------------
    def _live_indices(self) -> list[int]:
        return [index for index, conn in enumerate(self._conns) if conn.alive]

    def _route_for(self, worker_id: int) -> int | None:
        """The live connection index a logical worker currently routes to.

        ``None`` when no connection is live at all (the caller parks the
        job for redispatch, or raises if the pool can never come back).
        """
        conn_index = self._route[worker_id]
        if self._conns[conn_index].alive:
            return conn_index
        survivors = self._live_indices()
        if not survivors:
            return None
        # the routed connection died between collects; remap first
        self._remap_route(conn_index, survivors)
        return self._route[worker_id]

    def _park(self, job_id: int, record: _InFlight) -> None:
        """Queue an unroutable in-flight job for a later redispatch."""
        record.conn_index = _UNROUTED
        self._inflight[job_id] = record
        if job_id not in self._redispatch:
            self._redispatch.append(job_id)

    def _send(self, job_id: int, record: _InFlight) -> bool:
        """Record ``job_id`` as in flight and push its frame down the wire.

        Returns ``False`` when the job could not be sent: either no live
        connection exists (the job is parked; raises
        :class:`~repro.errors.WorkerLostError` instead if no reconnect can
        ever succeed) or the target connection died under the send (the
        job is parked among its orphans).
        """
        conn_index = self._route_for(record.worker_id)
        if conn_index is None:
            self._park(job_id, record)
            if not self._reconnect_pending():
                self._raise_pool_lost()
            return False
        conn = self._conns[conn_index]
        record.conn_index = conn_index
        self._inflight[job_id] = record
        frame = record.frame_for(conn.version)
        try:
            conn.sock.sendall(frame)
        except OSError:
            self._on_conn_dead(conn_index)
            return False
        self._bytes_sent += len(frame)
        return True

    def _pump(self, timeout: float | None) -> None:
        """Wait up to ``timeout`` for socket activity and absorb it."""
        events = self._selector.select(timeout)
        now = time.monotonic()
        for key, _mask in events:
            index = key.data
            conn = self._conns[index]
            if not conn.alive:  # closed while handling an earlier event
                continue
            try:
                data = conn.sock.recv(_RECV_BYTES)
            except (ConnectionResetError, OSError):
                data = b""
            if not data:
                self._on_conn_dead(index)
                continue
            # any received byte proves the worker is alive and making
            # progress; an outstanding liveness probe is thereby answered
            conn.last_recv = now
            conn.ping_token = None
            try:
                conn.assembler.feed(data)
            except SerializationError:
                # corrupted stream: treat the worker as lost, requeue its jobs
                self._on_conn_dead(index)
                continue
            for kind, payload in conn.assembler:
                if kind in (FRAME_RESULT, FRAME_RESULT_BATCH):
                    try:
                        self._absorb_result(payload, batch=kind == FRAME_RESULT_BATCH)
                    except (SerializationError, KeyError, TypeError, ValueError):
                        # well-framed but undecodable answer: the peer is
                        # confused, not the run -- bury it, requeue its jobs
                        self._on_conn_dead(index)
                        break
                elif kind == FRAME_PONG:
                    self._pongs[index] = payload
                # hello frames (reconnect chatter) and anything else: ignore

    def _absorb_result(self, payload: bytes, batch: bool = False) -> None:
        decoded = xdr.decode(payload)
        # a v5 worker coalesces one FRAME_JOB_BATCH's answers into a single
        # FRAME_RESULT_BATCH message; its members absorb exactly like the
        # per-member result frames an older worker would have sent
        answers = decoded["results"] if batch else [decoded]
        for answer in answers:
            self._absorb_answer(answer)

    def _absorb_answer(self, answer: dict) -> None:
        job_id = int(answer["job_id"])
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            # duplicate after a redispatch race: the job was already answered
            return
        elapsed = float(answer.get("elapsed") or 0.0)
        self._busy[entry.worker_id] += elapsed
        self._ready.append(
            CompletedJob(
                job_id=job_id,
                worker_id=entry.worker_id,
                result=answer.get("result"),
                compute_time=elapsed,
                collected_at=time.perf_counter() - self._start,
                error=answer.get("error"),
            )
        )

    def _raise_pool_lost(self) -> None:
        lost = tuple(sorted(self._inflight))
        raise WorkerLostError(
            f"all {self._n_workers} remote workers are gone; "
            f"{len(lost)} jobs were in flight (resubmit them against a "
            f"fresh backend)",
            job_ids=lost,
        )

    def _remap_route(self, dead_index: int, survivors: list[int]) -> None:
        """Point logical workers routed at ``dead_index`` to live connections."""
        for worker_id, conn_index in enumerate(self._route):
            if conn_index == dead_index:
                self._route[worker_id] = survivors[worker_id % len(survivors)]

    def _on_conn_dead(self, index: int) -> None:
        """Bury a connection; queue its in-flight jobs for redispatch."""
        conn = self._conns[index]
        if not conn.alive:
            return
        conn.alive = False
        conn.ping_token = None
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        conn.sock.close()
        if (
            self._reconnect_policy is not None
            and not conn.detached
            and not self._finalized
        ):
            self._redial[index] = _ReconnectState(
                attempts=0,
                next_try=time.monotonic() + self._reconnect_policy.backoff(1),
            )
        for job_id, entry in self._inflight.items():
            if entry.conn_index == index:
                # park the orphan: no connection holds it until the next
                # blocking call flushes it to a survivor (a sendall here
                # could stall a nominally non-blocking poll())
                entry.conn_index = _UNROUTED
                if job_id not in self._redispatch:
                    self._redispatch.append(job_id)
        survivors = self._live_indices()
        if survivors:
            self._remap_route(index, survivors)
        elif self._inflight and not self._reconnect_pending():
            self._raise_pool_lost()

    # -- reconnect ---------------------------------------------------------------
    def _redial_candidates(self) -> list[int]:
        if self._reconnect_policy is None:
            return []
        limit = self._reconnect_policy.max_attempts
        return sorted(
            index for index, state in self._redial.items() if state.attempts < limit
        )

    def _reconnect_pending(self) -> bool:
        """Is any dead host still allowed another dial?"""
        return bool(self._redial_candidates())

    def _next_redial_at(self) -> float:
        due = [self._redial[index].next_try for index in self._redial_candidates()]
        return min(due) if due else time.monotonic()

    def _maybe_reconnect(self) -> None:
        """Re-dial dead hosts whose backoff expired (blocking contexts only)."""
        if self._reconnect_policy is None or self._finalized:
            return
        for index in self._redial_candidates():
            state = self._redial[index]
            if state.next_try > time.monotonic():
                continue
            address = self._conns[index].address
            try:
                conn = self._connect(address, self._connect_timeout)
            except ClusterError:
                state.attempts += 1
                state.next_try = time.monotonic() + self._reconnect_policy.backoff(
                    state.attempts + 1
                )
                continue
            self._conns[index] = conn
            self._selector.register(conn.sock, selectors.EVENT_READ, index)
            del self._redial[index]
            self._reconnects += 1
            # hand the reborn host its original logical slots back
            for worker_id, home in enumerate(self._home):
                if home == index:
                    self._route[worker_id] = index

    # -- liveness ----------------------------------------------------------------
    def _check_liveness(self) -> None:
        """PING silent busy connections; bury the ones that never answer."""
        if self._liveness_timeout is None:
            return
        now = time.monotonic()
        busy = {entry.conn_index for entry in self._inflight.values()}
        for index in self._live_indices():
            conn = self._conns[index]
            if index not in busy:
                conn.ping_token = None  # idle connections owe us nothing
                continue
            if conn.ping_token is not None:
                if now - conn.ping_sent > self._liveness_timeout:
                    # neither a pong nor a result inside the window: the
                    # worker is wedged -- bury it like a dropped socket so
                    # its jobs move on within seconds, not collect-timeouts
                    self._liveness_buried += 1
                    self._on_conn_dead(index)
                continue
            if now - conn.last_recv > self._liveness_timeout:
                token = os.urandom(8)
                try:
                    conn.sock.sendall(
                        encode_frame(FRAME_PING, token, version=conn.version)
                    )
                except OSError:
                    self._on_conn_dead(index)
                    continue
                conn.ping_token = token
                conn.ping_sent = now

    def _flush_redispatch(self) -> None:
        """Re-send parked orphans (blocking contexts only)."""
        pending, self._redispatch = self._redispatch, []
        while pending:
            job_id = pending.pop(0)
            entry = self._inflight.get(job_id)
            if entry is None or entry.conn_index != _UNROUTED:
                continue  # answered meanwhile, or already re-sent
            # same logical worker slot, surviving connection
            if self._send(job_id, entry):
                self._redispatches += 1
            else:
                # no live route (re-parked) or the target died mid-send
                # (re-parked among its orphans): stop flushing this round
                break
        # whatever was not attempted stays parked for the next flush
        for job_id in pending:
            if job_id not in self._redispatch:
                self._redispatch.append(job_id)

    def _stop_conn(self, conn: _Connection) -> None:
        if not conn.alive or conn.stop_sent:
            return
        conn.stop_sent = True
        try:
            conn.sock.sendall(encode_frame(FRAME_STOP, version=conn.version))
        except OSError:  # the worker is already gone; nothing left to stop
            pass
