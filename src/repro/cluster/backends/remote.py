"""Remote TCP execution backend: the paper's MPI pool over real sockets.

This is the first backend that crosses a machine boundary.  Each worker is a
``repro-worker`` server (:mod:`repro.cluster.worker`) -- possibly on another
host -- and the master keeps one TCP connection per worker, shipping jobs as
length-prefixed XDR frames (:mod:`repro.serial.frames`) and collecting
result frames with :mod:`selectors`:

* :meth:`RemoteBackend.dispatch` serializes the prepared payload into one
  ``FRAME_JOB`` message -- ``MPI_Send_Obj`` in the paper's master script;
* :meth:`RemoteBackend.collect` blocks on the selector until any connection
  delivers a ``FRAME_RESULT`` -- ``MPI_Probe(-1, -1, ...)`` then
  ``MPI_Recv_Obj``;
* :meth:`RemoteBackend.poll` / :meth:`~RemoteBackend.try_collect` drain
  whatever already arrived without blocking -- ``MPI_Iprobe`` -- which is
  all the streaming futures API needs to work over the wire unchanged.

Worker death is survivable: the master keeps the encoded frame of every
in-flight job, so when a connection drops its jobs are redispatched to the
surviving workers and the run completes (the freed logical worker slot is
remapped onto a live connection).  Only when the *whole* pool is gone does a
retryable :class:`~repro.errors.WorkerLostError` surface, carrying the ids
of the jobs that were in flight so a caller can resubmit them against fresh
workers.

Build one through the registry --
``create_backend("remote", hosts=["10.0.0.4:9631", ...])`` or
``BackendSpec(name="remote", options={"hosts": [...]})`` -- and use
:func:`repro.cluster.worker.spawn_local_workers` for a loopback pool.
"""

from __future__ import annotations

import os
import selectors
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.cluster.backends.base import (
    PAYLOAD_PROBLEM,
    PAYLOAD_SERIAL,
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.errors import ClusterError, CollectTimeoutError, SerializationError, WorkerLostError
from repro.serial import Serial, serialize, xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_JOB_BATCH,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_STOP,
    FrameAssembler,
    encode_frame,
    read_frame,
)

__all__ = ["RemoteBackend", "normalize_hosts"]

_RECV_BYTES = 1 << 16

#: sentinel ``conn_index`` of an orphaned in-flight job awaiting redispatch
_UNROUTED = -1


def normalize_hosts(hosts: Any) -> tuple[str, ...]:
    """Normalise a user-supplied worker address list to ``"host:port"`` strings.

    Accepts an iterable of ``"host:port"`` strings or ``(host, port)``
    pairs.  The result is a plain tuple of strings -- hashable, so it can
    live inside a frozen :class:`~repro.api.config.BackendSpec`.
    """
    if isinstance(hosts, str):
        hosts = [hosts]
    if not isinstance(hosts, Iterable):
        raise ClusterError(
            f"hosts must be a list of 'host:port' strings or (host, port) "
            f"pairs, got {type(hosts).__name__}"
        )
    normalized: list[str] = []
    for entry in hosts:
        if isinstance(entry, str):
            host, sep, port_text = entry.rpartition(":")
            if not sep or not host:
                raise ClusterError(f"worker address {entry!r} is not 'host:port'")
        elif isinstance(entry, Sequence) and len(entry) == 2:
            host, port_text = str(entry[0]), str(entry[1])
        else:
            raise ClusterError(
                f"worker address {entry!r} is neither 'host:port' nor a "
                f"(host, port) pair"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ClusterError(f"invalid port in worker address {entry!r}") from None
        if not 0 < port < 65536:
            raise ClusterError(f"port {port} out of range in worker address {entry!r}")
        normalized.append(f"{host}:{port}")
    if not normalized:
        raise ClusterError("the remote backend needs at least one worker address")
    return tuple(normalized)


@dataclass
class _Connection:
    """Master-side state of one worker link."""

    address: str
    sock: socket.socket
    assembler: FrameAssembler = field(default_factory=FrameAssembler)
    alive: bool = True
    stop_sent: bool = False


@dataclass
class _InFlight:
    """A dispatched, not-yet-answered job (kept for redispatch on death).

    Singly-dispatched jobs keep their already-encoded ``frame``; chunk
    members keep only the wire ``entry`` dictionary (whose payload bytes
    are shared with the batch frame) and encode a solo frame lazily, on
    the rare death-redispatch path.
    """

    worker_id: int
    conn_index: int
    frame: bytes | None = None
    entry: dict[str, Any] | None = None

    def redispatch_frame(self) -> bytes:
        if self.frame is None:
            assert self.entry is not None
            self.frame = encode_frame(FRAME_JOB, xdr.encode(self.entry))
        return self.frame


class RemoteBackend(WorkerBackend):
    """Master-side driver of a pool of ``repro-worker`` TCP servers.

    Parameters
    ----------
    hosts:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs); one logical worker per address.  The scheduler-facing
        ``n_workers`` is ``len(hosts)``.
    connect_timeout:
        Seconds allowed for each TCP connect + protocol handshake.
    send_timeout:
        Seconds a single frame send may block before the worker is declared
        lost (its jobs are requeued).  Bounds ``collect(timeout=...)``: a
        network-partitioned worker whose TCP buffer filled up cannot hang
        the master forever on ``sendall``.
    """

    def __init__(
        self,
        hosts: Any,
        connect_timeout: float = 10.0,
        send_timeout: float = 60.0,
    ):
        addresses = normalize_hosts(hosts)
        self._n_workers = len(addresses)
        self._send_timeout = send_timeout
        self._selector = selectors.DefaultSelector()
        self._conns: list[_Connection] = []
        #: logical worker id -> index into ``_conns`` (remapped on death)
        self._route: list[int] = list(range(self._n_workers))
        self._inflight: dict[int, _InFlight] = {}
        #: orphaned job ids awaiting redispatch; flushed only from blocking
        #: calls (dispatch/collect) so poll() can never stall on a send
        self._redispatch: list[int] = []
        self._ready: list[CompletedJob] = []
        #: conn index -> token of the last pong received (see ping_workers)
        self._pongs: dict[int, bytes] = {}
        self._n_jobs = 0
        self._bytes_sent = 0
        self._busy: dict[int, float] = {i: 0.0 for i in range(self._n_workers)}
        self._start = time.perf_counter()
        self._finalized = False
        try:
            for index, address in enumerate(addresses):
                conn = self._connect(address, connect_timeout)
                self._conns.append(conn)
                self._selector.register(conn.sock, selectors.EVENT_READ, index)
        except Exception:
            for conn in self._conns:
                conn.sock.close()
            self._selector.close()
            raise

    def _connect(self, address: str, timeout: float) -> _Connection:
        host, _, port_text = address.rpartition(":")
        try:
            sock = socket.create_connection((host, int(port_text)), timeout=timeout)
        except OSError as exc:
            raise ClusterError(f"cannot connect to worker {address}: {exc}") from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # the worker greets first; a version mismatch fails here, loudly,
            # before any job is dispatched
            frame = read_frame(sock.recv)
            if frame is None or frame[0] != FRAME_HELLO:
                raise ClusterError(
                    f"worker {address} did not greet with a hello frame "
                    f"(is it a repro-worker?)"
                )
        except (SerializationError, OSError) as exc:
            # OSError covers the silent peer: connect_timeout is still armed,
            # so a listener that never greets surfaces here, wrapped
            sock.close()
            raise ClusterError(f"handshake with worker {address} failed: {exc}") from exc
        except Exception:
            sock.close()
            raise
        # bounds every later sendall; recv never blocks on it because the
        # selector only hands over sockets with data pending
        sock.settimeout(self._send_timeout)
        return _Connection(address=address, sock=sock)

    # -- WorkerBackend contract --------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._n_workers

    def on_run_start(self, n_jobs: int) -> None:
        self._start = time.perf_counter()

    @staticmethod
    def _wire_entry(job: Job, message: PreparedMessage) -> dict[str, Any]:
        """The XDR-encodable job dictionary a worker expects on the wire."""
        kind, payload = message.kind, message.payload
        if kind == PAYLOAD_PROBLEM:
            # in-memory objects cannot cross the wire as such; ship them
            # serialized (the worker-side decode path is identical)
            payload = serialize(payload).to_bytes()
            kind = PAYLOAD_SERIAL
        elif isinstance(payload, Serial):
            payload = payload.to_bytes()
        return {"job_id": job.job_id, "kind": kind, "payload": payload}

    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage) -> None:
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        frame = encode_frame(FRAME_JOB, xdr.encode(self._wire_entry(job, message)))
        self._n_jobs += 1
        self._bytes_sent += len(frame)
        self._send(job.job_id, worker_id, frame)
        self._flush_redispatch()

    def dispatch_batch(
        self,
        worker_id: int,
        jobs: list[Job],
        messages: list[PreparedMessage] | None = None,
    ) -> None:
        """Ship a whole chunk as **one** TCP frame (chunked scheduling).

        The worker answers with one result frame per member, so collection
        stays incremental.  For death recovery each member is tracked with
        its own single-job frame: if the connection dies mid-chunk, the
        unanswered members are redispatched individually to the survivors
        (an answered member is never re-sent).
        """
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        if messages is None or len(messages) != len(jobs):
            raise ClusterError("remote workers need one prepared payload per job")
        entries = [
            self._wire_entry(job, message) for job, message in zip(jobs, messages)
        ]
        try:
            frame = encode_frame(FRAME_JOB_BATCH, xdr.encode({"jobs": entries}))
        except SerializationError:
            # the combined chunk overflows the frame-size guard; individual
            # jobs may still fit, so degrade to per-job dispatch rather than
            # kill a run that per-job framing completes
            for job, message in zip(jobs, messages):
                self.dispatch(worker_id, job, message)
            return
        self._n_jobs += len(jobs)
        self._bytes_sent += len(frame)
        conn_index = self._route_for(worker_id)
        for entry in entries:
            # the solo redispatch frame is only built if the connection dies
            self._inflight[int(entry["job_id"])] = _InFlight(
                worker_id, conn_index, frame=None, entry=entry
            )
        try:
            self._conns[conn_index].sock.sendall(frame)
        except OSError:
            self._on_conn_dead(conn_index)
        self._flush_redispatch()

    def collect(self, timeout: float | None = 300.0) -> CompletedJob:
        if not self._ready and not self._inflight:
            raise ClusterError("no job in flight")
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._ready:
            self._flush_redispatch()
            if deadline is None:
                wait: float | None = None
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    raise CollectTimeoutError(
                        f"timed out after {timeout}s waiting for a remote worker result"
                    )
            self._pump(wait)
        return self._ready.pop(0)

    def poll(self) -> bool:
        if self._inflight:
            self._pump(0.0)
        return bool(self._ready)

    def try_collect(self) -> CompletedJob | None:
        if self.poll():
            return self._ready.pop(0)
        return None

    def ping_workers(self, timeout: float = 5.0) -> dict[str, bool]:
        """Keepalive-probe every live connection; return address -> alive.

        Sends a :data:`FRAME_PING` with a fresh token down each live
        connection and waits up to ``timeout`` seconds for the matching
        pongs.  A connection that fails the send or stays silent is declared
        dead exactly as if it had dropped mid-campaign: its in-flight jobs
        (if any) are requeued to the survivors.  This is how a long-lived
        master notices dead TCP workers *between* campaigns, when no result
        traffic would expose them.  Addresses whose connection was already
        buried report ``False``.
        """
        if self._finalized:
            raise ClusterError("backend already finalized")
        token = os.urandom(8)
        pending: set[int] = set()
        for index in self._live_indices():
            self._pongs.pop(index, None)
            try:
                self._conns[index].sock.sendall(encode_frame(FRAME_PING, token))
            except OSError:
                self._on_conn_dead(index)
                continue
            pending.add(index)
        deadline = time.monotonic() + timeout
        while pending:
            answered = {i for i in pending if self._pongs.get(i) == token}
            pending -= answered
            if not pending:
                break
            wait = deadline - time.monotonic()
            if wait <= 0:
                for index in sorted(pending):
                    # silent past the deadline: bury it like a dropped socket
                    self._on_conn_dead(index)
                break
            self._pump(wait)
        live = set(self._live_indices())
        return {
            conn.address: index in live for index, conn in enumerate(self._conns)
        }

    def send_stop(self, worker_id: int) -> None:
        conn = self._conns[self._route[worker_id]]
        self._stop_conn(conn)

    def finalize(self) -> BackendStats:
        if not self._finalized:
            self._finalized = True
            for conn in self._conns:
                self._stop_conn(conn)
                if conn.alive:
                    try:
                        self._selector.unregister(conn.sock)
                    except (KeyError, ValueError):  # pragma: no cover - defensive
                        pass
                    conn.sock.close()
                    conn.alive = False
            self._selector.close()
        total = time.perf_counter() - self._start
        return BackendStats(
            total_time=total,
            n_jobs=self._n_jobs,
            n_workers=self._n_workers,
            worker_busy=dict(self._busy),
            master_busy=total,
            bytes_sent=self._bytes_sent,
            extra={"hosts": [conn.address for conn in self._conns]},
        )

    # -- wire plumbing -----------------------------------------------------------
    def _live_indices(self) -> list[int]:
        return [index for index, conn in enumerate(self._conns) if conn.alive]

    def _route_for(self, worker_id: int) -> int:
        """The live connection index a logical worker currently routes to."""
        conn_index = self._route[worker_id]
        if not self._conns[conn_index].alive:
            # the routed connection died between collects; remap first
            self._remap_route(conn_index)
            conn_index = self._route[worker_id]
        return conn_index

    def _send(self, job_id: int, worker_id: int, frame: bytes) -> None:
        """Record ``job_id`` as in flight and push its frame down the wire."""
        conn_index = self._route_for(worker_id)
        self._inflight[job_id] = _InFlight(worker_id, conn_index, frame)
        try:
            self._conns[conn_index].sock.sendall(frame)
        except OSError:
            self._on_conn_dead(conn_index)

    def _pump(self, timeout: float | None) -> None:
        """Wait up to ``timeout`` for socket activity and absorb it."""
        events = self._selector.select(timeout)
        for key, _mask in events:
            index = key.data
            conn = self._conns[index]
            if not conn.alive:  # closed while handling an earlier event
                continue
            try:
                data = conn.sock.recv(_RECV_BYTES)
            except (ConnectionResetError, OSError):
                data = b""
            if not data:
                self._on_conn_dead(index)
                continue
            try:
                conn.assembler.feed(data)
            except SerializationError:
                # corrupted stream: treat the worker as lost, requeue its jobs
                self._on_conn_dead(index)
                continue
            for kind, payload in conn.assembler:
                if kind == FRAME_RESULT:
                    try:
                        self._absorb_result(payload)
                    except (SerializationError, KeyError, TypeError, ValueError):
                        # well-framed but undecodable answer: the peer is
                        # confused, not the run -- bury it, requeue its jobs
                        self._on_conn_dead(index)
                        break
                elif kind == FRAME_PONG:
                    self._pongs[index] = payload
                # hello frames (reconnect chatter) and anything else: ignore

    def _absorb_result(self, payload: bytes) -> None:
        answer = xdr.decode(payload)
        job_id = int(answer["job_id"])
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            # duplicate after a redispatch race: the job was already answered
            return
        elapsed = float(answer.get("elapsed") or 0.0)
        self._busy[entry.worker_id] += elapsed
        self._ready.append(
            CompletedJob(
                job_id=job_id,
                worker_id=entry.worker_id,
                result=answer.get("result"),
                compute_time=elapsed,
                collected_at=time.perf_counter() - self._start,
                error=answer.get("error"),
            )
        )

    def _raise_pool_lost(self) -> None:
        lost = tuple(sorted(self._inflight))
        raise WorkerLostError(
            f"all {self._n_workers} remote workers are gone; "
            f"{len(lost)} jobs were in flight (resubmit them against a "
            f"fresh backend)",
            job_ids=lost,
        )

    def _remap_route(self, dead_index: int) -> None:
        """Point logical workers routed at ``dead_index`` to live connections."""
        survivors = self._live_indices()
        if not survivors:
            self._raise_pool_lost()
        for worker_id, conn_index in enumerate(self._route):
            if conn_index == dead_index:
                self._route[worker_id] = survivors[worker_id % len(survivors)]

    def _on_conn_dead(self, index: int) -> None:
        """Bury a connection; redispatch its in-flight jobs to survivors."""
        conn = self._conns[index]
        if not conn.alive:
            return
        conn.alive = False
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        conn.sock.close()
        if not self._live_indices():
            if self._inflight:
                self._raise_pool_lost()
            return  # nothing was lost; the pool just wound down
        self._remap_route(index)
        for job_id, entry in self._inflight.items():
            if entry.conn_index == index:
                # park the orphan: no connection holds it until the next
                # blocking call flushes it to a survivor (a sendall here
                # could stall a nominally non-blocking poll())
                entry.conn_index = _UNROUTED
                self._redispatch.append(job_id)

    def _flush_redispatch(self) -> None:
        """Re-send parked orphans (blocking contexts only)."""
        while self._redispatch:
            job_id = self._redispatch.pop(0)
            entry = self._inflight.get(job_id)
            if entry is None or entry.conn_index != _UNROUTED:
                continue  # answered meanwhile, or already re-sent
            # same logical worker slot, surviving connection
            self._send(job_id, entry.worker_id, entry.redispatch_frame())

    def _stop_conn(self, conn: _Connection) -> None:
        if not conn.alive or conn.stop_sent:
            return
        conn.stop_sent = True
        try:
            conn.sock.sendall(encode_frame(FRAME_STOP))
        except OSError:  # the worker is already gone; nothing left to stop
            pass
