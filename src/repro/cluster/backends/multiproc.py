"""Real parallel execution with ``multiprocessing`` worker processes.

This backend is the laptop-scale equivalent of the paper's MPI deployment:
one master process (the scheduler) plus ``n_workers`` slave processes, each
receiving serialized problems (or file names, for the NFS-style strategy)
over an inter-process queue, pricing them for real, and sending the results
back over a shared result queue.

Because the workers are genuine OS processes, the measured wall-clock times
show real speedup on multi-core machines; the discrete-event simulator
(:mod:`repro.cluster.simcluster`) extrapolates the same master/worker
protocol to hundreds of nodes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import time
from collections import deque
from typing import Any

from repro.cluster.backends.base import (
    BackendStats,
    CompletedJob,
    Job,
    PreparedMessage,
    WorkerBackend,
)
from repro.cluster.backends.execution import execute_payload, make_worker_cache
from repro.cluster.shm import (
    SHM_MIN_BYTES,
    SegmentRegistry,
    decode_result,
    encode_result,
    shm_available,
)
from repro.errors import ClusterError, CollectTimeoutError

__all__ = ["MultiprocessingBackend", "worker_main"]

_STOP = "__stop__"


def worker_main(
    worker_id: int,
    task_queue: Any,
    result_queue: Any,
    cache_dir: str | None = None,
    shm_prefix: str | None = None,
    shm_min_bytes: int = SHM_MIN_BYTES,
) -> None:
    """Slave loop: receive payloads, price them, send results back.

    The loop mirrors the slave part of the paper's Fig. 4 script: it blocks
    on its queue, treats an empty job name (our ``_STOP`` sentinel) as the
    signal to stop working, and otherwise rebuilds the problem, computes it
    and returns the results to the master.  With a ``cache_dir`` every
    worker opens the same on-disk result cache, so repeated problems are
    answered without pricing.

    With ``shm_prefix`` the worker joins the master's shared-memory
    transport: inbound payloads may arrive as segment handles (consumed
    here), and large result arrays are published back as segments instead
    of being pickled through the result queue.
    """
    cache = make_worker_cache(cache_dir)
    registry = (
        SegmentRegistry(shm_prefix) if shm_prefix and shm_available() else None
    )
    while True:
        item = task_queue.get()
        if item == _STOP:
            break
        # a list item is one chunked-dispatch message carrying several jobs
        # (the conclusion's "send a single large message" refinement);
        # results still go back one by one, so the master collects and
        # refills incrementally whatever the dispatch granularity was
        chunk = item if isinstance(item, list) else [item]
        for job_id, kind, payload in chunk:
            if registry is not None:
                payload = decode_result(payload, registry)
            result, elapsed, error = execute_payload(kind, payload, cache=cache)
            if registry is not None and error is None:
                result = encode_result(result, registry, shm_min_bytes)
            result_queue.put((job_id, worker_id, result, elapsed, error))


class MultiprocessingBackend(WorkerBackend):
    """Master-side driver of a pool of worker processes.

    Parameters
    ----------
    n_workers:
        Number of slave processes to spawn.
    start_method:
        ``multiprocessing`` start method (``"fork"`` by default on Linux;
        ``"spawn"`` is safer on macOS/Windows but slower to start).
    cache_dir:
        Optional shared on-disk result-cache directory opened by every
        worker (see :mod:`repro.pricing.cache`).
    use_shm:
        Route large payloads/result arrays through
        :mod:`multiprocessing.shared_memory` instead of pickling them over
        the queues.  ``None`` (default) auto-enables when the platform
        supports it; ``False`` forces the plain pickle transport.
    shm_min_bytes:
        Buffers below this size stay on the pickle path (segment setup
        costs more than it saves for small messages).
    """

    def __init__(
        self,
        n_workers: int = 2,
        start_method: str | None = None,
        cache_dir: str | None = None,
        use_shm: bool | None = None,
        shm_min_bytes: int = SHM_MIN_BYTES,
    ):
        if n_workers < 1:
            raise ClusterError("n_workers must be >= 1")
        self._n_workers = int(n_workers)
        self._use_shm = shm_available() if use_shm is None else bool(use_shm)
        if self._use_shm and not shm_available():
            raise ClusterError("use_shm=True but shared memory is unavailable here")
        self._shm_min_bytes = int(shm_min_bytes)
        self._registry: SegmentRegistry | None = None
        shm_prefix: str | None = None
        if self._use_shm:
            # run-scoped prefix shared with every worker so the finalize
            # sweep can reclaim segments leaked by a dying worker
            shm_prefix = f"rshm{os.getpid()}x"
            self._registry = SegmentRegistry(shm_prefix)
        ctx = mp.get_context(start_method) if start_method else mp.get_context()
        self._result_queue: Any = ctx.Queue()
        self._task_queues: list[Any] = [ctx.Queue() for _ in range(self._n_workers)]
        self._processes = [
            ctx.Process(
                target=worker_main,
                args=(
                    i,
                    self._task_queues[i],
                    self._result_queue,
                    cache_dir,
                    shm_prefix,
                    self._shm_min_bytes,
                ),
                daemon=True,
            )
            for i in range(self._n_workers)
        ]
        for process in self._processes:
            process.start()
        self._in_flight = 0
        self._n_jobs = 0
        self._bytes_sent = 0
        self._busy: dict[int, float] = {i: 0.0 for i in range(self._n_workers)}
        #: results already pulled off the shared queue by :meth:`poll` but not
        #: yet handed to the master through :meth:`collect`
        self._ready: deque[tuple[int, int, Any, float, str | None]] = deque()
        self._start = time.perf_counter()
        self._finalized = False

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def uses_shm(self) -> bool:
        """Whether the shared-memory transport is active on this backend."""
        return self._registry is not None

    def on_run_start(self, n_jobs: int) -> None:
        self._start = time.perf_counter()

    def _outbound(self, payload: Any) -> Any:
        """Swap large payload buffers for shm handles before enqueueing."""
        if self._registry is None:
            return payload
        return encode_result(payload, self._registry, self._shm_min_bytes)

    def dispatch(self, worker_id: int, job: Job, message: PreparedMessage) -> None:
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        self._task_queues[worker_id].put(
            (job.job_id, message.kind, self._outbound(message.payload))
        )
        self._in_flight += 1
        self._n_jobs += 1
        self._bytes_sent += message.nbytes

    def dispatch_batch(
        self,
        worker_id: int,
        jobs: list[Job],
        messages: list[PreparedMessage] | None = None,
    ) -> None:
        """Ship a whole chunk as **one** queue message (chunked scheduling)."""
        if not 0 <= worker_id < self._n_workers:
            raise ClusterError(f"invalid worker id {worker_id}")
        if self._finalized:
            raise ClusterError("backend already finalized")
        if messages is None or len(messages) != len(jobs):
            raise ClusterError(
                "multiprocessing workers need one prepared payload per job"
            )
        self._task_queues[worker_id].put(
            [
                (job.job_id, message.kind, self._outbound(message.payload))
                for job, message in zip(jobs, messages)
            ]
        )
        self._in_flight += len(jobs)
        self._n_jobs += len(jobs)
        self._bytes_sent += sum(message.nbytes for message in messages)

    def collect(self, timeout: float | None = 300.0) -> CompletedJob:
        if self._in_flight == 0:
            raise ClusterError("no job in flight")
        if self._ready:
            job_id, worker_id, result, elapsed, error = self._ready.popleft()
        else:
            try:
                job_id, worker_id, result, elapsed, error = self._result_queue.get(
                    timeout=timeout
                )
            except queue_module.Empty as exc:
                raise CollectTimeoutError(
                    f"timed out after {timeout}s waiting for a worker result"
                ) from exc
        self._in_flight -= 1
        self._busy[worker_id] += elapsed
        if self._registry is not None and error is None:
            result = decode_result(result, self._registry)
        return CompletedJob(
            job_id=job_id,
            worker_id=worker_id,
            result=result,
            compute_time=elapsed,
            collected_at=time.perf_counter() - self._start,
            error=error,
        )

    def poll(self) -> bool:
        if self._in_flight == 0:
            return False
        # drain whatever the workers have already pushed, without blocking
        while True:
            try:
                self._ready.append(self._result_queue.get_nowait())
            except queue_module.Empty:
                break
        return bool(self._ready)

    def finalize(self) -> BackendStats:
        if not self._finalized:
            self._finalized = True
            for task_queue in self._task_queues:
                task_queue.put(_STOP)
            for process in self._processes:
                process.join(timeout=30.0)
                if process.is_alive():  # pragma: no cover - defensive cleanup
                    process.terminate()
                    process.join(timeout=5.0)
            if self._registry is not None:
                # reclaims anything a dead worker published but nobody consumed
                self._registry.close()
        total = time.perf_counter() - self._start
        return BackendStats(
            total_time=total,
            n_jobs=self._n_jobs,
            n_workers=self._n_workers,
            worker_busy=dict(self._busy),
            master_busy=total,
            bytes_sent=self._bytes_sent,
        )
