"""Compute-cost model for pricing problems.

The simulated cluster does not execute every pricing problem (re-pricing the
7,931-claim portfolio once per CPU count would be pointless -- the prices do
not change); instead it advances virtual time by a per-problem *compute
cost*.  The cost model estimates this cost from the pricing method and its
work parameters (paths, steps, grid sizes), with throughput constants
calibrated so that the realistic portfolio of Section 4.3 lands in the same
cost classes as the paper:

* plain-vanilla closed form: "almost instantaneous";
* Monte-Carlo / PDE European options: an intermediate, method-dependent cost;
* American options (PDE or Longstaff-Schwartz): the most expensive class.

The absolute scale is set by ``seconds_per_mega_evaluation``-style constants
that can be re-calibrated against actual measurements of the Python pricers
(:meth:`CostModel.calibrate`), or set to the paper's cluster scale
(:func:`paper_cost_model`) so that simulated running times are comparable to
Tables I-III.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.pricing.engine import PricingProblem

__all__ = ["CostModel", "paper_cost_model", "measured_cost", "estimate_work_units"]


def estimate_work_units(problem: PricingProblem) -> tuple[float, str]:
    """Estimate the work of a problem in abstract units and its cost family.

    Returns ``(work_units, family)`` where ``family`` is one of
    ``"closed_form"``, ``"fourier"``, ``"tree"``, ``"pde"``, ``"pde_american"``,
    ``"monte_carlo"`` or ``"american_monte_carlo"``.  Work units roughly count
    elementary floating point sweeps:

    * PDE: ``n_space * n_time``
    * trees: ``n_steps ** 2``
    * Monte-Carlo: ``n_paths * n_steps * dimension``
    * closed form / Fourier: a constant.
    """
    method_name = problem.method_name or ""
    params = problem.method.to_params()
    dimension = max(problem.model.dimension, 1)

    if method_name.startswith("CF_"):
        return 1.0, "closed_form"
    if method_name.startswith("FFT"):
        return float(params.get("n_terms", 256)), "fourier"
    if method_name.startswith("TR_"):
        n_steps = int(params.get("n_steps", 500))
        return float(n_steps * n_steps), "tree"
    if method_name.startswith("FD_"):
        n_space = int(params.get("n_space", 400))
        n_time = int(params.get("n_time", 200))
        family = "pde_american" if "American" in method_name else "pde"
        return float(n_space * n_time), family
    if method_name.startswith("MC_AM"):
        n_paths = int(params.get("n_paths", 50_000))
        n_steps = params.get("n_steps") or 50
        return float(n_paths * int(n_steps) * dimension), "american_monte_carlo"
    if method_name.startswith("MC_"):
        n_paths = int(params.get("n_paths", 100_000))
        n_steps = params.get("n_steps") or 1
        return float(n_paths * int(n_steps) * dimension), "monte_carlo"
    # unknown method: assume a mid-range cost
    return 1.0e6, "monte_carlo"


@dataclass(frozen=True)
class CostModel:
    """Per-family throughput constants (seconds per work unit) plus overheads.

    The defaults approximate the single-threaded Python pricers of this
    library on a current laptop; :func:`paper_cost_model` rescales them to
    the 2.66 GHz Xeon-3075 / C-implementation regime of the paper, where a
    single Monte-Carlo European costs 10-30 s and American options exceed
    60 s.
    """

    #: fixed per-problem overhead (argument parsing, object setup)
    overhead: float = 2.0e-4
    closed_form: float = 2.0e-4
    fourier: float = 2.0e-6
    tree: float = 2.0e-8
    pde: float = 1.5e-7
    pde_american: float = 2.0e-7
    monte_carlo: float = 1.2e-8
    american_monte_carlo: float = 2.5e-8
    #: global multiplier (useful to emulate slower/faster nodes)
    scale: float = 1.0
    #: fraction of a shared-simulation member's cost that is payoff
    #: evaluation rather than path simulation; a coalesced
    #: :class:`~repro.pricing.batch.ProblemBatch` job costs one full member
    #: (the shared simulation) plus this fraction of every other member
    batch_payoff_fraction: float = 0.02

    _FAMILY_FIELDS = (
        "closed_form",
        "fourier",
        "tree",
        "pde",
        "pde_american",
        "monte_carlo",
        "american_monte_carlo",
    )

    def rate_for(self, family: str) -> float:
        if family not in self._FAMILY_FIELDS:
            raise ValueError(f"unknown cost family {family!r}")
        return float(getattr(self, family))

    def estimate(self, problem: PricingProblem) -> float:
        """Estimated compute time (seconds) of ``problem`` on a reference node."""
        work, family = estimate_work_units(problem)
        if family == "closed_form":
            return self.scale * (self.overhead + self.closed_form)
        return self.scale * (self.overhead + work * self.rate_for(family))

    def with_scale(self, scale: float) -> "CostModel":
        """Return a copy with a different global scale factor."""
        return replace(self, scale=scale)

    def estimate_batch_jobs(self, member_costs: list[float]) -> float:
        """Cost of a shared-simulation batch job from its members' solo costs.

        The family simulates its path set **once** -- the most expensive
        member pays full price -- and every other member only re-evaluates
        its payoff against the shared paths, modelled as
        ``batch_payoff_fraction`` of its solo cost.  This is what makes the
        simulated cluster batch-aware: Tables II/III regenerate "with
        batching" by coalescing jobs whose compute cost comes from here.
        """
        if not member_costs:
            raise ValueError("estimate_batch_jobs needs at least one member cost")
        peak = max(member_costs)
        return peak + self.batch_payoff_fraction * (sum(member_costs) - peak)

    def estimate_batch(self, problems: list[PricingProblem]) -> float:
        """Estimated compute time of pricing ``problems`` as one shared batch."""
        return self.estimate_batch_jobs([self.estimate(p) for p in problems])

    def calibrate(self, problems: list[PricingProblem], measured: list[float]) -> "CostModel":
        """Refit the per-family rates from measured execution times.

        A simple per-family least-squares fit (each family has a single rate,
        so the fit reduces to a ratio of sums); families with no sample keep
        their current rate.
        """
        if len(problems) != len(measured):
            raise ValueError("problems and measured timings must have the same length")
        sums: dict[str, list[float]] = {}
        for problem, elapsed in zip(problems, measured):
            work, family = estimate_work_units(problem)
            sums.setdefault(family, [0.0, 0.0])
            net = max(elapsed - self.overhead, 1e-6)
            if family == "closed_form":
                sums[family][0] += 1.0
                sums[family][1] += net
            else:
                sums[family][0] += work
                sums[family][1] += net
        updates: dict[str, float] = {}
        for family, (work_sum, time_sum) in sums.items():
            if work_sum > 0:
                updates[family] = time_sum / work_sum
        return replace(self, **updates)

    def as_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in
                ("overhead", "scale", "batch_payoff_fraction", *self._FAMILY_FIELDS)}


def paper_cost_model() -> CostModel:
    """Cost model calibrated to the *paper's* cost classes.

    With the default method parameters used by
    :func:`repro.core.portfolio.build_realistic_portfolio`, this model puts
    plain-vanilla options at a fraction of a millisecond, PDE/Monte-Carlo
    European options in the 0.4-1.5 s range and American options above that,
    so the simulated Table III has the same total-work scale (a few thousand
    seconds on 1 worker) and the same heterogeneity as the paper's run.
    """
    return CostModel(
        overhead=1.0e-4,
        closed_form=2.0e-4,
        fourier=4.0e-6,
        tree=4.0e-8,
        pde=2.5e-6,
        pde_american=3.5e-6,
        monte_carlo=1.6e-8,
        american_monte_carlo=4.0e-8,
        scale=1.0,
    )


def measured_cost(problem: PricingProblem) -> float:
    """Actually run the problem once and return the measured wall time.

    Used to calibrate :class:`CostModel` against the real Python pricers.
    """
    import time

    start = time.perf_counter()
    problem.compute()
    return time.perf_counter() - start
