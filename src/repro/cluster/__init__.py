"""``repro.cluster`` -- message passing and execution backends (MPI substitute).

Three layers:

* :mod:`repro.cluster.mpi` -- an MPI-2-like API (spawn, send/recv of
  serialized objects, pack/unpack, probe) reproducing the programming model
  of the paper's Nsp listings on top of threads;
* :mod:`repro.cluster.backends` -- the master/worker execution backends used
  by the benchmark runner, resolved by registered name (the built-ins cover
  sequential, ``multiprocessing``, remote TCP workers and the simulated
  cluster; :func:`~repro.cluster.backends.list_backends` is authoritative),
  with :mod:`repro.cluster.worker` providing the ``repro-worker`` server the
  remote backend talks to;
* :mod:`repro.cluster.simcluster` -- the discrete-event cluster model
  (workers, Gigabit-Ethernet network, NFS server with cache, communication
  cost model) that reproduces the paper's speedup tables at laptop scale.
"""

from repro.cluster import mpi
from repro.cluster.backends import (
    BackendStats,
    CompletedJob,
    Job,
    MultiprocessingBackend,
    PreparedMessage,
    SequentialBackend,
    WorkerBackend,
)
from repro.cluster.costmodel import CostModel, estimate_work_units, measured_cost, paper_cost_model
from repro.cluster.simcluster import (
    STRATEGY_NAMES,
    ClusterSpec,
    CommunicationModel,
    NetworkModel,
    NFSModel,
    NodeSpec,
    SimulatedClusterBackend,
    gigabit_ethernet,
)

__all__ = [
    "mpi",
    "Job",
    "PreparedMessage",
    "CompletedJob",
    "BackendStats",
    "WorkerBackend",
    "SequentialBackend",
    "MultiprocessingBackend",
    "SimulatedClusterBackend",
    "ClusterSpec",
    "NodeSpec",
    "NetworkModel",
    "NFSModel",
    "CommunicationModel",
    "gigabit_ethernet",
    "STRATEGY_NAMES",
    "CostModel",
    "paper_cost_model",
    "estimate_work_units",
    "measured_cost",
]
