"""Deterministic fault injection for the cluster layer.

Two complementary harnesses live here, one per kind of cluster:

:class:`ChaosProxy`
    A frame-aware TCP interposer for **real-socket** tests.  It sits between
    a :class:`~repro.cluster.backends.remote.RemoteBackend` master and a
    ``repro-worker`` server, forwards RWF frames in both directions, and
    injects faults on a per-frame schedule: kill the link, delay a frame, or
    truncate one mid-header.  Because faults trigger on *frame counts*, not
    wall-clock timers, the same test script exercises the same code path on
    every run -- the chaos is reproducible.

:class:`ChurnSchedule`
    A declarative death/join timetable for the **simulated** cluster.
    Workers die or join at *virtual* times, so scheduler behaviour under
    elasticity (redirected dispatches, mid-compute restarts) is evaluated in
    deterministic virtual time with zero real sockets -- the same trick the
    paper's speedup tables use, applied to fault tolerance.  Pass one to
    :class:`~repro.cluster.simcluster.simulator.SimulatedClusterBackend` via
    its ``churn=`` option.

Neither harness touches the production code path: the proxy speaks the wire
format from the outside and the schedule only drives the simulator's clocks.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ClusterError
from repro.serial.frames import FRAME_HEADER_BYTES, FRAME_MAGIC, MAX_FRAME_BYTES

__all__ = [
    "ChaosProxy",
    "ChaosRule",
    "ChurnEvent",
    "ChurnSchedule",
    "delay_frame",
    "kill_after",
    "truncate_frame",
]

_HEADER = struct.Struct(">4sHHI")

#: fault directions, named from the master's point of view
C2S = "c2s"  # master -> worker frames
S2C = "s2c"  # worker -> master frames
BOTH = "both"


# ---------------------------------------------------------------------------
# ChaosProxy: real-socket fault injection
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosRule:
    """One fault on the frame schedule of a proxied link.

    The rule fires when the ``after_frames``-th frame *in the matching
    direction* has already been forwarded and the next one is about to be
    (``after_frames=0`` fires on the very first frame).  ``once=True``
    (default) makes the rule proxy-lifetime: it fires on one connection and
    never again, so a master that reconnects through the proxy gets a clean
    link -- exactly the shape reconnect tests need.
    """

    action: str  # "kill" | "delay" | "truncate"
    after_frames: int = 0
    direction: str = BOTH
    delay: float = 0.0
    once: bool = True

    def __post_init__(self) -> None:
        if self.action not in ("kill", "delay", "truncate"):
            raise ClusterError(f"unknown chaos action {self.action!r}")
        if self.direction not in (C2S, S2C, BOTH):
            raise ClusterError(f"unknown chaos direction {self.direction!r}")
        if self.after_frames < 0:
            raise ClusterError("ChaosRule.after_frames must be >= 0")
        if self.action == "delay" and self.delay <= 0:
            raise ClusterError("a delay rule needs delay > 0 seconds")


def kill_after(frames: int, direction: str = BOTH, *, once: bool = True) -> ChaosRule:
    """Kill the link when frame number ``frames + 1`` is about to pass."""
    return ChaosRule("kill", after_frames=frames, direction=direction, once=once)


def delay_frame(
    frames: int, seconds: float, direction: str = BOTH, *, once: bool = True
) -> ChaosRule:
    """Hold frame number ``frames + 1`` for ``seconds`` before forwarding."""
    return ChaosRule(
        "delay", after_frames=frames, direction=direction, delay=seconds, once=once
    )


def truncate_frame(frames: int, direction: str = BOTH, *, once: bool = True) -> ChaosRule:
    """Forward only half of frame number ``frames + 1``, then kill the link."""
    return ChaosRule("truncate", after_frames=frames, direction=direction, once=once)


class _Link:
    """One proxied client<->upstream connection pair."""

    def __init__(self, client: socket.socket, upstream: socket.socket):
        self.client = client
        self.upstream = upstream
        self.lock = threading.Lock()
        self.counts = {C2S: 0, S2C: 0}
        self.dead = False

    def kill(self) -> None:
        with self.lock:
            if self.dead:
                return
            self.dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A TCP interposer that forwards RWF frames and injects scheduled faults.

    Point a master at :attr:`address` instead of the worker's real address::

        with ChaosProxy(worker_address, rules=[kill_after(5)]) as proxy:
            backend = RemoteBackend([proxy.address], reconnect=True)
            ...

    The proxy accepts any number of connections (each dials ``upstream``
    anew), forwards complete frames in both directions, and applies its
    :class:`ChaosRule` list on the per-link frame schedule.  Frames are cut
    on exact boundaries using the real header layout, so a *kill* looks to
    both peers like a worker crash between frames and a *truncate* like a
    crash mid-frame -- the two failure shapes the reconnect and assembler
    layers must survive.  :meth:`kill_links` injects an unscheduled failure.
    """

    def __init__(
        self,
        upstream: str | tuple[str, int],
        rules: "list[ChaosRule] | tuple[ChaosRule, ...]" = (),
        *,
        host: str = "127.0.0.1",
        backlog: int = 8,
    ):
        if isinstance(upstream, str):
            addr_host, _, addr_port = upstream.rpartition(":")
            try:
                self._upstream = (addr_host or "127.0.0.1", int(addr_port))
            except ValueError as exc:
                raise ClusterError(
                    f"bad upstream address {upstream!r}; expected 'host:port'"
                ) from exc
        else:
            self._upstream = (upstream[0], int(upstream[1]))
        self._rules = tuple(rules)
        self._fired: set[int] = set()
        self._lock = threading.Lock()
        self._links: list[_Link] = []
        self._closed = False
        self.stats = {
            "connections": 0,
            "frames_forwarded": 0,
            "kills": 0,
            "delays": 0,
            "truncations": 0,
        }

        self._listener = socket.create_server((host, 0), backlog=backlog)
        self._port = self._listener.getsockname()[1]
        self._host = host
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # -- public surface ----------------------------------------------------------
    @property
    def address(self) -> str:
        """The ``host:port`` masters should dial instead of the worker."""
        return f"{self._host}:{self._port}"

    def kill_links(self) -> int:
        """Kill every live proxied connection now (unscheduled chaos)."""
        with self._lock:
            links = list(self._links)
        killed = 0
        for link in links:
            if not link.dead:
                link.kill()
                killed += 1
        if killed:
            with self._lock:
                self.stats["kills"] += killed
        return killed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.kill_links()
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed: clean shutdown
            try:
                up = socket.create_connection(self._upstream, timeout=10.0)
            except OSError:
                client.close()
                continue
            for sock in (client, up):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = _Link(client, up)
            with self._lock:
                self._links.append(link)
                self.stats["connections"] += 1
            for direction, src, dst in ((C2S, client, up), (S2C, up, client)):
                threading.Thread(
                    target=self._pump,
                    args=(link, direction, src, dst),
                    name=f"chaos-proxy-{direction}",
                    daemon=True,
                ).start()

    def _rule_for(self, link: _Link, direction: str) -> "ChaosRule | None":
        """The first unfired rule matching this direction at this frame count."""
        for index, rule in enumerate(self._rules):
            if rule.direction not in (direction, BOTH):
                continue
            with self._lock:
                if rule.once and index in self._fired:
                    continue
                count = link.counts[direction]
                if rule.direction == BOTH:
                    count = link.counts[C2S] + link.counts[S2C]
                if count != rule.after_frames:
                    continue
                self._fired.add(index)
            return rule
        return None

    def _pump(self, link: _Link, direction: str, src: socket.socket, dst: socket.socket) -> None:
        buffer = bytearray()
        raw_mode = False
        try:
            while not link.dead:
                try:
                    data = src.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                if raw_mode:
                    dst.sendall(data)
                    continue
                buffer.extend(data)
                while len(buffer) >= FRAME_HEADER_BYTES:
                    magic, _version, _kind, length = _HEADER.unpack_from(buffer)
                    if magic != FRAME_MAGIC or length > MAX_FRAME_BYTES:
                        # not our wire format: stop interposing, pass through
                        raw_mode = True
                        dst.sendall(bytes(buffer))
                        buffer.clear()
                        break
                    end = FRAME_HEADER_BYTES + length
                    if len(buffer) < end:
                        break
                    frame = bytes(buffer[:end])
                    del buffer[:end]
                    if not self._forward(link, direction, dst, frame):
                        return
        finally:
            link.kill()

    def _forward(
        self, link: _Link, direction: str, dst: socket.socket, frame: bytes
    ) -> bool:
        """Apply the rule schedule to one complete frame; False kills the pump."""
        rule = self._rule_for(link, direction)
        if rule is not None and rule.action == "kill":
            with self._lock:
                self.stats["kills"] += 1
            link.kill()
            return False
        if rule is not None and rule.action == "truncate":
            with self._lock:
                self.stats["truncations"] += 1
            try:
                dst.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
            link.kill()
            return False
        if rule is not None and rule.action == "delay":
            with self._lock:
                self.stats["delays"] += 1
            time.sleep(rule.delay)
        try:
            dst.sendall(frame)
        except OSError:
            link.kill()
            return False
        with self._lock:
            link.counts[direction] += 1
            self.stats["frames_forwarded"] += 1
        return True


# ---------------------------------------------------------------------------
# ChurnSchedule: virtual-time elasticity for the simulated cluster
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnEvent:
    """One worker death or join at a virtual time."""

    time: float
    action: str  # "kill" | "join"
    worker_id: int | None = None  # kill only
    speed: float = 1.0  # join only

    def __post_init__(self) -> None:
        if self.action not in ("kill", "join"):
            raise ClusterError(f"unknown churn action {self.action!r}")
        if self.time < 0:
            raise ClusterError("churn events need time >= 0")
        if self.action == "kill" and (self.worker_id is None or self.worker_id < 0):
            raise ClusterError("a kill event needs a worker_id >= 0")
        if self.action == "join" and self.speed <= 0:
            raise ClusterError("a join event needs speed > 0")


@dataclass
class ChurnSchedule:
    """A declarative timetable of worker deaths and joins in virtual time.

    Build one fluently and hand it to the simulated backend::

        churn = ChurnSchedule().kill(0, at=5.0).kill(3, at=9.0).join(at=12.0)
        backend = SimulatedClusterBackend(spec, churn=churn)

    Deaths take effect on the simulator's clocks: a dispatch routed to a
    dead worker is deterministically redirected to the live worker that
    frees up earliest, and a job computing when its worker dies restarts on
    a survivor at the death instant (the paper's master never loses a job,
    it just pays for the lost work).  Joins append extra workers whose
    clocks only start at the join time.  Everything is a pure function of
    the schedule -- no randomness, no real time.
    """

    events: list[ChurnEvent] = field(default_factory=list)

    def kill(self, worker_id: int, at: float) -> "ChurnSchedule":
        """Worker ``worker_id`` dies at virtual time ``at`` (fluent)."""
        self.events.append(ChurnEvent(time=at, action="kill", worker_id=worker_id))
        return self

    def join(self, at: float, speed: float = 1.0) -> "ChurnSchedule":
        """A new worker joins at virtual time ``at`` (fluent)."""
        self.events.append(ChurnEvent(time=at, action="join", speed=speed))
        return self

    @property
    def kills(self) -> dict[int, float]:
        """Death time per worker id (the earliest kill wins)."""
        deaths: dict[int, float] = {}
        for event in self.events:
            if event.action != "kill":
                continue
            assert event.worker_id is not None
            current = deaths.get(event.worker_id)
            if current is None or event.time < current:
                deaths[event.worker_id] = event.time
        return deaths

    @property
    def joins(self) -> list[tuple[float, float]]:
        """``(birth_time, speed)`` per joining worker, in join order."""
        return [
            (event.time, event.speed)
            for event in sorted(
                (e for e in self.events if e.action == "join"),
                key=lambda e: e.time,
            )
        ]
