"""Shared-memory array transport between the master and its workers.

Batch mode ships 10^5-path sample matrices and multi-kilobyte serialized
families through ``multiprocessing`` queues; pickling those buffers copies
them twice (once into the pipe, once out).  This module moves large buffers
through POSIX shared memory instead (:mod:`multiprocessing.shared_memory`):
the sender publishes a segment and enqueues a small *handle*, the receiver
attaches, copies out, and unlinks.

The moving parts:

* :class:`SegmentRegistry` -- a ref-counted registry of the segments this
  process created or attached.  Publishing hands out a handle with refcount
  one; :meth:`SegmentRegistry.retain`/:meth:`SegmentRegistry.release` move
  the count, and the mapping is closed when it reaches zero
  (unlink-on-close for segments that were never handed to another process).
  Consumption (:meth:`SegmentRegistry.consume_bytes` /
  :meth:`SegmentRegistry.consume_array`) is transfer-semantics: attach,
  copy, close, unlink.
* a run-scoped **name prefix** shared by the master and all its workers, so
  :meth:`SegmentRegistry.sweep` can reclaim segments leaked by a worker
  that died between publish and consume -- the master sweeps at finalize.
* a **pickle fallback**: when :func:`shm_available` is false (platform
  without the module, or monkeypatched away in tests) the handles degrade
  to inline payloads and everything still works, just slower.

Handles are plain dictionaries so they ride through queues, XDR frames and
JSON untouched.
"""

from __future__ import annotations

import os
import threading
from typing import Any

import numpy as np

try:  # pragma: no cover - import guard exercised via monkeypatching in tests
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - all supported platforms have it
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SHM_MIN_BYTES",
    "shm_available",
    "SegmentRegistry",
    "encode_result",
    "decode_result",
]

#: buffers below this size are cheaper to pickle than to round-trip through
#: a shared-memory segment (two syscalls + mmap); tests lower it to force
#: the shm path
SHM_MIN_BYTES = 1 << 18

#: marker keys of the transport handles (dicts so they serialize anywhere)
_ARRAY_KEY = "__shm_array__"
_BYTES_KEY = "__shm_bytes__"


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is importable here."""
    return _shared_memory is not None


class SegmentRegistry:
    """Ref-counted bookkeeping of shared-memory segments, unlink-on-close.

    Parameters
    ----------
    prefix:
        Run-scoped segment-name prefix.  The master and every worker of one
        backend share it, so a sweep over ``/dev/shm`` can identify (and
        reclaim) exactly this run's leftovers after a worker death.
    """

    def __init__(self, prefix: str):
        if not prefix or "/" in prefix:
            raise ValueError("prefix must be a non-empty flat name fragment")
        if _shared_memory is not None:
            # Start the resource tracker *now*, before any worker forks:
            # children then inherit its pipe and their register/unregister
            # messages land in the same cache as ours, so a segment
            # published here and unlinked in a worker (or vice versa) nets
            # out to zero instead of a spurious leak warning at shutdown.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except (ImportError, AttributeError, OSError):  # pragma: no cover
                pass
        self.prefix = str(prefix)
        self._lock = threading.Lock()
        #: name -> [segment, refcount]
        self._segments: dict[str, list[Any]] = {}
        #: every name this registry ever created (for the finalize sweep)
        self._issued: set[str] = set()
        self._seq = 0

    # -- publishing (sender side) -----------------------------------------
    def _create(self, nbytes: int) -> Any:
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        with self._lock:
            self._seq += 1
            name = f"{self.prefix}p{os.getpid()}n{self._seq}"
        segment = _shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=name)
        with self._lock:
            self._segments[name] = [segment, 1]
            self._issued.add(name)
        return segment

    def publish_bytes(self, data: bytes | bytearray | memoryview) -> dict[str, Any]:
        """Copy ``data`` into a fresh segment; returns its transport handle."""
        view = memoryview(data)
        segment = self._create(view.nbytes)
        segment.buf[: view.nbytes] = view
        return {"name": segment.name, "nbytes": view.nbytes}

    def publish_array(self, array: np.ndarray) -> dict[str, Any]:
        """Copy an ndarray into a fresh segment; returns its transport handle."""
        array = np.ascontiguousarray(array)
        segment = self._create(array.nbytes)
        target = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        target[...] = array
        return {
            "name": segment.name,
            "nbytes": array.nbytes,
            "shape": list(array.shape),
            "dtype": str(array.dtype),
        }

    # -- refcounting -------------------------------------------------------
    def retain(self, name: str) -> None:
        """Take an extra reference on a tracked segment."""
        with self._lock:
            if name not in self._segments:
                raise KeyError(f"unknown segment {name!r}")
            self._segments[name][1] += 1

    def release(self, name: str, unlink: bool = False) -> None:
        """Drop one reference; at zero the mapping closes (and unlinks).

        The sender of a transferred segment releases with ``unlink=False``
        right after enqueueing the handle -- the consumer unlinks.  Purely
        local segments release with ``unlink=True`` so the name disappears
        with the last reference.
        """
        with self._lock:
            if name not in self._segments:
                raise KeyError(f"unknown segment {name!r}")
            entry = self._segments[name]
            entry[1] -= 1
            done = entry[1] <= 0
            if done:
                del self._segments[name]
        if done:
            entry[0].close()
            if unlink:
                try:
                    entry[0].unlink()
                except FileNotFoundError:
                    pass

    def refcount(self, name: str) -> int:
        """Current local reference count (0 when untracked)."""
        with self._lock:
            entry = self._segments.get(name)
            return entry[1] if entry else 0

    @property
    def n_tracked(self) -> int:
        with self._lock:
            return len(self._segments)

    # -- consumption (receiver side) ---------------------------------------
    def _attach(self, name: str) -> Any:
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        # attaching registers with the (shared) resource tracker just like
        # creating did; the tracker cache is a set, so the consumer's
        # eventual ``unlink`` balances both registrations at once
        return _shared_memory.SharedMemory(name=name)

    def consume_bytes(self, handle: dict[str, Any]) -> bytes:
        """Attach a published segment, copy it out, close and unlink it."""
        segment = self._attach(handle["name"])
        try:
            return bytes(segment.buf[: handle["nbytes"]])
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - racing consumer
                pass

    def consume_array(self, handle: dict[str, Any]) -> np.ndarray:
        """Attach a published array segment, copy it out, close and unlink."""
        segment = self._attach(handle["name"])
        try:
            view = np.ndarray(
                tuple(handle["shape"]), dtype=np.dtype(handle["dtype"]), buffer=segment.buf
            )
            return view.copy()
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - racing consumer
                pass

    # -- cleanup -----------------------------------------------------------
    def sweep(self) -> list[str]:
        """Unlink every leftover segment of this registry's run prefix.

        Covers two leak shapes: segments *this* process issued whose
        consumer never attached (worker died between publish and consume),
        and segments a *worker* published before dying (found by listing
        ``/dev/shm`` for the shared prefix).  Returns the reclaimed names.
        """
        if _shared_memory is None:
            return []
        candidates = set(self._issued)
        shm_dir = "/dev/shm"
        if os.path.isdir(shm_dir):
            try:
                for entry in os.listdir(shm_dir):
                    if entry.startswith(self.prefix):
                        candidates.add(entry)
            except OSError:  # pragma: no cover - listing is best effort
                pass
        reclaimed = []
        for name in sorted(candidates):
            if self.refcount(name):
                continue  # still referenced locally -- not a leak
            try:
                segment = _shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue  # already consumed/unlinked -- the normal case
            segment.close()
            try:
                segment.unlink()
                reclaimed.append(name)
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
        return reclaimed

    def close(self) -> None:
        """Release every tracked segment (unlinking) and sweep leftovers."""
        with self._lock:
            names = list(self._segments)
        for name in names:
            while self.refcount(name):
                self.release(name, unlink=True)
        self.sweep()


# -- result-dict transport ----------------------------------------------------


def encode_result(
    obj: Any, registry: SegmentRegistry, min_bytes: int = SHM_MIN_BYTES
) -> Any:
    """Replace large ndarrays/byte strings in a result tree with handles.

    The returned structure is queue-safe and small; every published segment
    is immediately released by the sender (``unlink=False``) because the
    consumer unlinks on :func:`decode_result`.  Buffers under ``min_bytes``
    (and everything else) pass through unchanged -- the pickle fallback.
    """
    if not shm_available():
        return obj
    if isinstance(obj, dict):
        return {key: encode_result(value, registry, min_bytes) for key, value in obj.items()}
    if isinstance(obj, list):
        return [encode_result(value, registry, min_bytes) for value in obj]
    if isinstance(obj, np.ndarray) and obj.nbytes >= min_bytes:
        handle = registry.publish_array(obj)
        registry.release(handle["name"])
        return {_ARRAY_KEY: handle}
    if isinstance(obj, (bytes, bytearray)) and len(obj) >= min_bytes:
        handle = registry.publish_bytes(obj)
        registry.release(handle["name"])
        return {_BYTES_KEY: handle}
    return obj


def decode_result(obj: Any, registry: SegmentRegistry) -> Any:
    """Resolve the handles of :func:`encode_result`, consuming the segments."""
    if isinstance(obj, dict):
        if set(obj) == {_ARRAY_KEY}:
            return registry.consume_array(obj[_ARRAY_KEY])
        if set(obj) == {_BYTES_KEY}:
            return registry.consume_bytes(obj[_BYTES_KEY])
        return {key: decode_result(value, registry) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_result(value, registry) for value in obj]
    return obj
