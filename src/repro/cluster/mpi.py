"""An MPI-like message-passing facade (the MPINSP toolbox substitute).

The paper exposes MPI-2 primitives at the Nsp scripting level: spawning
slaves (``MPI_Comm_spawn`` / ``NSP_spawn``), sending and receiving arbitrary
objects through serialization (``MPI_Send_Obj`` / ``MPI_Recv_Obj``), packing
(``MPI_Pack`` / ``MPI_Unpack``), and probing for messages from any source
(``MPI_Probe`` + ``MPI_Get_count``).  The master/worker portfolio pricer of
Fig. 4/5 is written entirely with those calls.

This module reproduces the same call shapes on top of Python threads inside
one process: :func:`spawn` starts ``n`` slave threads, each receiving a
:class:`Communicator` whose rank is 1..n while the caller keeps rank 0, and
objects sent with :meth:`Communicator.send_obj` are serialized with
:mod:`repro.serial` exactly as Nsp serializes objects before an
``MPI_Send_Obj``.  It is *not* a distributed MPI -- the real multi-process
execution path of the benchmark is
:class:`repro.cluster.backends.multiproc.MultiprocessingBackend` -- but it
faithfully reproduces the programming model of the paper's listings, and the
integration tests run the Fig. 4 script against it.

Example
-------
>>> from repro.cluster import mpi
>>> def slave(comm):
...     value = comm.recv_obj(source=0, tag=1)
...     comm.send_obj(value * 2, dest=0, tag=2)
>>> with mpi.spawn(2, slave) as comm:
...     comm.send_obj(21, dest=1, tag=1)
...     comm.send_obj(100, dest=2, tag=1)
...     sorted([comm.recv_obj(source=-1, tag=2) for _ in range(2)])
[42, 200]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CommunicatorError
from repro.serial import Serial, serialize

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Communicator", "spawn", "pack", "unpack"]

#: wildcard source / tag, as in ``MPI_Probe(-1, -1, ...)``
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Result of a probe: message source, tag and size in bytes."""

    source: int
    tag: int
    count: int


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    nbytes: int


class _Mailbox:
    """Per-rank mailbox supporting blocking probe/receive with wildcards."""

    def __init__(self) -> None:
        self._messages: list[_Message] = []
        self._condition = threading.Condition()
        self._closed = False

    def put(self, message: _Message) -> None:
        with self._condition:
            if self._closed:
                raise CommunicatorError("mailbox is closed")
            self._messages.append(message)
            self._condition.notify_all()

    def _find(self, source: int, tag: int) -> int | None:
        for index, message in enumerate(self._messages):
            if source not in (ANY_SOURCE, message.source):
                continue
            if tag not in (ANY_TAG, message.tag):
                continue
            return index
        return None

    def probe(self, source: int, tag: int, timeout: float | None) -> _Message:
        with self._condition:
            deadline = None
            while True:
                index = self._find(source, tag)
                if index is not None:
                    return self._messages[index]
                if self._closed:
                    raise CommunicatorError("mailbox closed while probing")
                if not self._condition.wait(timeout=timeout):
                    raise CommunicatorError(
                        f"probe timed out waiting for a message from {source} with tag {tag}"
                    )
                del deadline

    def take(self, source: int, tag: int, timeout: float | None) -> _Message:
        with self._condition:
            while True:
                index = self._find(source, tag)
                if index is not None:
                    return self._messages.pop(index)
                if self._closed:
                    raise CommunicatorError("mailbox closed while receiving")
                if not self._condition.wait(timeout=timeout):
                    raise CommunicatorError(
                        f"receive timed out waiting for a message from {source} with tag {tag}"
                    )

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()


class _World:
    """Shared state of a spawned communicator group."""

    def __init__(self, size: int):
        self.size = size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)


class Communicator:
    """A rank's handle on the communicator group (``MPI_COMM_WORLD`` view)."""

    def __init__(self, world: _World, rank: int, default_timeout: float | None = 120.0):
        self._world = world
        self.rank = rank
        self.default_timeout = default_timeout

    # -- topology ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks, master included (``MPI_Comm_size``)."""
        return self._world.size

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"invalid rank {rank} (communicator size {self.size})")

    # -- object passing (MPI_Send_Obj / MPI_Recv_Obj) -----------------------------
    def send_obj(self, obj: Any, dest: int, tag: int = 0) -> int:
        """Serialize ``obj`` and deliver it to ``dest``.  Returns the number
        of bytes shipped."""
        self._check_rank(dest)
        serial = obj if isinstance(obj, Serial) else serialize(obj)
        message = _Message(source=self.rank, tag=tag, payload=serial, nbytes=serial.nbytes)
        self._world.mailboxes[dest].put(message)
        return serial.nbytes

    def recv_obj(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                 timeout: float | None = None) -> Any:
        """Receive a serialized object and rebuild it (``MPI_Recv_Obj``)."""
        message = self._world.mailboxes[self.rank].take(
            source, tag, timeout if timeout is not None else self.default_timeout
        )
        payload = message.payload
        return payload.unserialize() if isinstance(payload, Serial) else payload

    # -- packed buffers (MPI_Pack / MPI_Send / MPI_Recv / MPI_Unpack) --------------
    def send(self, packed: bytes | Serial, dest: int, tag: int = 0) -> int:
        """Send an already packed buffer without re-serializing it."""
        self._check_rank(dest)
        nbytes = packed.nbytes if isinstance(packed, Serial) else len(packed)
        message = _Message(source=self.rank, tag=tag, payload=packed, nbytes=nbytes)
        self._world.mailboxes[dest].put(message)
        return nbytes

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: float | None = None) -> bytes | Serial:
        """Receive a packed buffer as-is (pair of :meth:`send`)."""
        message = self._world.mailboxes[self.rank].take(
            source, tag, timeout if timeout is not None else self.default_timeout
        )
        return message.payload

    # -- probing -------------------------------------------------------------------
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              timeout: float | None = None) -> Status:
        """Block until a matching message is available (``MPI_Probe``)."""
        message = self._world.mailboxes[self.rank].probe(
            source, tag, timeout if timeout is not None else self.default_timeout
        )
        return Status(source=message.source, tag=message.tag, count=message.nbytes)

    # -- collectives -----------------------------------------------------------------
    def barrier(self, timeout: float | None = None) -> None:
        """Synchronise all ranks (``MPI_Barrier``)."""
        self._world.barrier.wait(timeout if timeout is not None else self.default_timeout)

    def close(self) -> None:
        self._world.mailboxes[self.rank].close()


def pack(obj: Any) -> Serial:
    """Serialize an object into a transportable buffer (``MPI_Pack``)."""
    return obj if isinstance(obj, Serial) else serialize(obj)


def unpack(buffer: Serial | bytes) -> Any:
    """Rebuild an object from a packed buffer (``MPI_Unpack``)."""
    if isinstance(buffer, Serial):
        return buffer.unserialize()
    return Serial.from_bytes(buffer).unserialize()


class SpawnedGroup:
    """Handle on a spawned master + slaves group (``NSP_spawn`` result).

    Entering the context returns the *master* communicator (rank 0); exiting
    joins the slave threads and re-raises the first slave exception, if any.
    """

    def __init__(self, n_slaves: int, target: Callable[..., Any], args: tuple[Any, ...]):
        if n_slaves < 1:
            raise CommunicatorError("need at least one slave")
        self._world = _World(size=n_slaves + 1)
        self.master = Communicator(self._world, rank=0)
        self._errors: list[BaseException] = []
        self._threads = []
        for rank in range(1, n_slaves + 1):
            comm = Communicator(self._world, rank=rank)
            thread = threading.Thread(
                target=self._run_slave, args=(target, comm, args), daemon=True,
                name=f"mpi-slave-{rank}",
            )
            self._threads.append(thread)
            thread.start()

    def _run_slave(self, target: Callable[..., Any], comm: Communicator, args: tuple[Any, ...]) -> None:
        try:
            target(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - reported at join time
            self._errors.append(exc)

    def join(self, timeout: float | None = 120.0) -> None:
        """Wait for every slave thread to finish and surface their errors."""
        for thread in self._threads:
            thread.join(timeout=timeout)
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            raise CommunicatorError(f"slave threads still running: {alive}")
        if self._errors:
            raise CommunicatorError(f"slave raised: {self._errors[0]!r}") from self._errors[0]

    def __enter__(self) -> Communicator:
        return self.master

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # only wait for slaves when the master body did not itself fail
        if exc_type is None:
            self.join()


def spawn(n_slaves: int, target: Callable[..., Any], *args: Any) -> SpawnedGroup:
    """Start ``n_slaves`` slave threads running ``target(comm, *args)``.

    Mirrors the paper's ``NEWORLD = NSP_spawn(n)`` helper: the caller becomes
    rank 0 of a communicator of size ``n_slaves + 1`` and each slave receives
    its own :class:`Communicator` with rank 1..n.
    """
    return SpawnedGroup(n_slaves, target, args)
