"""The ``repro-worker`` server: one of the paper's MPI slaves, over TCP.

The slave loop of the paper's Fig. 4 script is *receive a message; if it is
empty, stop; otherwise rebuild the problem, compute it and send the results
back to the master*.  This module runs exactly that loop behind a TCP
listening socket so the pool can span real machines: the master-side
:class:`~repro.cluster.backends.remote.RemoteBackend` connects one socket
per worker, ships jobs as length-prefixed XDR frames
(:mod:`repro.serial.frames`) and collects result frames as they come back.

Three entry points:

* :func:`serve` -- run a worker server in the current process (what the
  ``repro-worker`` console script calls);
* :func:`spawn_local_workers` -- the loopback harness: start ``n`` worker
  processes on ``127.0.0.1`` ephemeral ports and hand back their addresses,
  so tests, CI and the examples exercise the remote protocol without any
  external infrastructure;
* :func:`main` -- the ``repro-worker`` command line.

A worker prices jobs through the same
:func:`~repro.cluster.backends.execution.execute_payload` as the sequential
and multiprocessing backends -- including :class:`~repro.pricing.batch.ProblemBatch`
super-jobs and the optional on-disk result cache (``--cache-dir``) -- so
every payload kind that works locally works across the wire.
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import signal
import socket
import sys
from typing import Any, Sequence

from repro._version import __version__
from repro.errors import ClusterError, SerializationError
from repro.serial import xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_JOB_BATCH,
    FRAME_PING,
    FRAME_PONG,
    FRAME_STOP,
    FRAME_RESULT,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
)

__all__ = ["serve", "spawn_local_workers", "LocalWorkerPool", "probe_worker", "main"]


def _hello_payload() -> bytes:
    return xdr.encode(
        {"role": "repro-worker", "pid": os.getpid(), "version": PROTOCOL_VERSION}
    )


def _result_frame(
    job_id: int, result: Any, elapsed: float, error: str | None
) -> bytes:
    try:
        return encode_frame(
            FRAME_RESULT,
            xdr.encode(
                {"job_id": job_id, "result": result, "elapsed": elapsed, "error": error}
            ),
        )
    except SerializationError as exc:
        # a result the codec cannot ship must degrade to an error answer,
        # never kill the worker (the master would redispatch the same
        # poison job through every survivor)
        return encode_frame(
            FRAME_RESULT,
            xdr.encode(
                {
                    "job_id": job_id,
                    "result": None,
                    "elapsed": elapsed,
                    "error": f"result not transmissible: {exc}",
                }
            ),
        )


def _handle_connection(conn: socket.socket, cache: Any, log) -> bool:
    """Run the slave loop over one master connection.

    Returns ``True`` when the master sent a clean stop frame, ``False`` when
    the connection ended any other way (master died, stream corrupted).
    """
    from repro.cluster.backends.execution import execute_payload

    conn.sendall(encode_frame(FRAME_HELLO, _hello_payload()))
    while True:
        try:
            frame = read_frame(conn.recv)
        except SerializationError as exc:
            log(f"dropping connection: {exc}")
            return False
        if frame is None:  # master closed the socket without a stop frame
            return False
        kind, payload = frame
        if kind == FRAME_STOP:
            return True
        if kind == FRAME_PING:
            # keepalive (protocol v3): echo the opaque token straight back so
            # an idle master can tell a live worker from a dead TCP endpoint
            conn.sendall(encode_frame(FRAME_PONG, payload))
            continue
        if kind not in (FRAME_JOB, FRAME_JOB_BATCH):
            log(f"ignoring unexpected frame kind {kind}")
            continue
        try:
            decoded = xdr.decode(payload)
            # a batch frame is one message carrying a whole chunk; answers
            # still go back one result frame per member so the master's
            # collection loop stays incremental
            entries = decoded["jobs"] if kind == FRAME_JOB_BATCH else [decoded]
            parsed = [
                (int(entry["job_id"]), entry["kind"], entry["payload"])
                for entry in entries
            ]
        except (SerializationError, KeyError, TypeError, ValueError) as exc:
            log(f"dropping connection on undecodable job frame: {exc}")
            return False
        for job_id, payload_kind, job_payload in parsed:
            result, elapsed, error = execute_payload(
                payload_kind, job_payload, cache=cache
            )
            conn.sendall(_result_frame(job_id, result, elapsed, error))


def _make_log(quiet: bool):
    def log(message: str) -> None:
        if not quiet:
            print(f"[repro-worker {os.getpid()}] {message}", file=sys.stderr)

    return log


def _accept_loop(
    server: socket.socket,
    cache_dir: str | None,
    once: bool,
    quiet: bool,
) -> None:
    """Accept master connections on an already-listening socket, forever.

    This is the body of one pricing process: with ``repro-worker --workers N``
    every forked child runs this loop on the **same** inherited listening
    socket, so the kernel load-balances incoming master connections across
    the children.
    """
    from repro.cluster.backends.execution import make_worker_cache

    log = _make_log(quiet)
    cache = make_worker_cache(cache_dir)
    while True:
        try:
            conn, peer = server.accept()
        except KeyboardInterrupt:
            log("interrupted, shutting down")
            return
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            log(f"master connected from {peer[0]}:{peer[1]}")
            try:
                stopped = _handle_connection(conn, cache, log)
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                log(f"connection lost: {exc}")
                stopped = False
            log("connection closed" + (" (stop frame)" if stopped else ""))
        if once:
            return


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: str | None = None,
    once: bool = False,
    ready: Any = None,
    quiet: bool = True,
    workers: int = 1,
) -> None:
    """Accept master connections and price their jobs until interrupted.

    ``port=0`` binds an ephemeral port; ``ready`` (a callable) receives the
    actually-bound port once the server is listening.  ``once=True`` exits
    after the first connection ends -- useful for tests and one-shot
    deployments.  ``cache_dir`` opens the shared on-disk result cache every
    other executing backend understands (see :mod:`repro.pricing.cache`).

    ``workers=N`` forks ``N`` pricing processes behind the one listening
    socket: each child runs the accept loop on the shared socket, so a
    master that lists the same ``host:port`` address ``N`` times gets ``N``
    genuinely parallel slaves from a single server (with ``once=True`` each
    child exits after its first connection ends).  Requires the ``fork``
    start method (Linux/macOS).
    """
    log = _make_log(quiet)
    if workers < 1:
        raise ClusterError("serve needs workers >= 1")
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(max(8, 2 * workers))
        bound_port = server.getsockname()[1]
        if ready is not None:
            ready(bound_port)
        log(f"listening on {host}:{bound_port} ({workers} pricing process(es))")
        if workers == 1:
            _accept_loop(server, cache_dir, once, quiet)
            return
        if "fork" not in mp.get_all_start_methods():
            raise ClusterError(
                "--workers needs the 'fork' multiprocessing start method to "
                "share the listening socket; run one repro-worker per port "
                "on this platform instead"
            )
        # a SIGTERM on the parent must still tear the children down (the
        # default handler would skip the finally block below)
        try:
            signal.signal(signal.SIGTERM, lambda *_args: sys.exit(0))
        except ValueError:  # pragma: no cover - not in the main thread
            pass
        ctx = mp.get_context("fork")
        children = [
            ctx.Process(
                target=_accept_loop,
                args=(server, cache_dir, once, quiet),
                # daemonic: multiprocessing also reaps them if this parent
                # exits through a path that skips the finally block below
                daemon=True,
            )
            for _ in range(workers)
        ]
        try:
            for child in children:
                child.start()
            for child in children:
                child.join()
        except KeyboardInterrupt:
            log("interrupted, shutting down")
        finally:
            for child in children:
                if child.is_alive():
                    child.terminate()
            for child in children:
                child.join(timeout=5.0)
    finally:
        server.close()


def _spawned_worker(
    index: int, host: str, port_queue: Any, cache_dir: str | None, workers: int = 1
) -> None:
    """Entry point of one :func:`spawn_local_workers` process."""
    if workers > 1:
        # a multi-process server cannot be daemonic (it forks children), so
        # if the caller dies without pool.stop() nothing reaps it; watch for
        # reparenting and tear down via the SIGTERM path serve() installs
        import threading
        import time

        original_ppid = os.getppid()

        def _exit_when_orphaned() -> None:
            while os.getppid() == original_ppid:
                time.sleep(1.0)
            os.kill(os.getpid(), signal.SIGTERM)

        threading.Thread(target=_exit_when_orphaned, daemon=True).start()
    serve(
        host=host,
        port=0,
        cache_dir=cache_dir,
        workers=workers,
        ready=lambda port: port_queue.put((index, port)),
    )


class LocalWorkerPool:
    """A handful of loopback worker processes, for tests and examples.

    Iterable/indexable as its ``"host:port"`` address list, usable as a
    context manager (``stop()`` on exit), and deliberately easy to sabotage:
    :meth:`kill` hard-kills one worker so the master's death-recovery path
    can be exercised.
    """

    def __init__(self, processes: list[Any], hosts: list[str]):
        self._processes = processes
        self.hosts = list(hosts)

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def __getitem__(self, index: int) -> str:
        return self.hosts[index]

    def kill(self, index: int) -> None:
        """Hard-kill one worker process (simulates a node failure).

        Meant for single-process servers (the default): with
        ``workers_per_server > 1`` the SIGKILL hits the accepting parent
        and its forked pricing children are left to the kernel, so death
        tests should stick to one pricing process per server.
        """
        self._processes[index].kill()
        self._processes[index].join(timeout=10.0)

    def stop(self) -> None:
        """Terminate every worker process still alive."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.kill()
                process.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def spawn_local_workers(
    n: int,
    *,
    cache_dir: str | None = None,
    start_method: str | None = None,
    timeout: float = 30.0,
    workers_per_server: int = 1,
) -> LocalWorkerPool:
    """Start ``n`` worker servers on ``127.0.0.1`` and return their pool.

    Each worker is a real OS process running :func:`serve` on an ephemeral
    port; the call returns once every worker is listening, so a
    ``ValuationSession(backend="remote", backend_options={"hosts": pool.hosts})``
    can connect immediately.  Stop the pool with :meth:`LocalWorkerPool.stop`
    or a ``with`` block.

    ``workers_per_server`` forwards ``serve(workers=N)``: each server forks
    ``N`` pricing processes behind its one listening socket (the
    ``repro-worker --workers N`` deployment).  ``pool.hosts`` still has one
    address per *server*; list an address once per desired connection on the
    master side (e.g. ``hosts=pool.hosts * N``).
    """
    if n < 1:
        raise ClusterError("spawn_local_workers needs n >= 1")
    if workers_per_server < 1:
        raise ClusterError("spawn_local_workers needs workers_per_server >= 1")
    ctx = mp.get_context(start_method) if start_method else mp.get_context()
    port_queue = ctx.Queue()
    processes = []
    try:
        for index in range(n):
            process = ctx.Process(
                target=_spawned_worker,
                args=(index, "127.0.0.1", port_queue, cache_dir, workers_per_server),
                # a multi-process server must fork children, which daemonic
                # processes may not do
                daemon=workers_per_server == 1,
            )
            process.start()
            processes.append(process)
        # ports arrive in whichever-bound-first order; key them back to the
        # spawn index so hosts[i] is always the address of _processes[i]
        # (kill(i) must sabotage the worker it names)
        ports: dict[int, int] = {}
        for _ in range(n):
            index, port = port_queue.get(timeout=timeout)
            ports[index] = port
        hosts = [f"127.0.0.1:{ports[index]}" for index in range(n)]
    except Exception:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    pool = LocalWorkerPool(processes, hosts)
    if workers_per_server > 1:
        # non-daemonic servers would otherwise block multiprocessing's
        # exit-time join if the caller forgets pool.stop(); atexit handlers
        # run LIFO, so this stop() lands before that join
        import atexit

        atexit.register(pool.stop)
    return pool


def probe_worker(address: str, *, timeout: float = 5.0) -> bool:
    """Liveness-probe one worker over a throwaway connection.

    Connects to ``"host:port"``, waits for the worker's HELLO, sends a
    :data:`FRAME_PING` and expects the token echoed back in a
    :data:`FRAME_PONG`, then leaves with a clean stop frame (the worker's
    accept loop survives, exactly like after a campaign).  Returns ``True``
    for a live protocol-compatible worker and ``False`` for anything else:
    refused connection, dead endpoint, timeout, version mismatch.

    This is how an idle daemon (``repro-serve``) notices dead TCP workers
    *between* campaigns instead of at next dispatch; a long-lived
    :class:`~repro.cluster.backends.remote.RemoteBackend` uses
    ``ping_workers()`` on its own live connections instead.
    """
    host, _, port_text = address.rpartition(":")
    token = os.urandom(8)
    try:
        with socket.create_connection((host, int(port_text)), timeout=timeout) as conn:
            conn.settimeout(timeout)
            frame = read_frame(conn.recv)
            if frame is None or frame[0] != FRAME_HELLO:
                return False
            conn.sendall(encode_frame(FRAME_PING, token))
            while True:
                frame = read_frame(conn.recv)
                if frame is None:
                    return False
                if frame[0] == FRAME_PONG:
                    if frame[1] != token:
                        return False
                    conn.sendall(encode_frame(FRAME_STOP))
                    return True
    except (OSError, ValueError, SerializationError):
        return False


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Run one TCP pricing worker (a paper-style MPI slave) "
        "for the remote execution backend.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on (default: loopback only; "
                        "the protocol is unauthenticated, so expose other "
                        "interfaces -- e.g. --host 0.0.0.0 -- only on networks "
                        "you trust)")
    parser.add_argument("--port", type=int, default=9631,
                        help="TCP port to listen on (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fork N pricing processes behind the one "
                        "listening socket; a master that lists this address "
                        "N times gets N parallel slaves (needs the 'fork' "
                        "start method)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="open the shared on-disk result cache in DIR")
    parser.add_argument("--once", action="store_true",
                        help="exit after the first master connection ends")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-connection log lines")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-worker`` console script."""
    args = build_parser().parse_args(argv)
    serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        once=args.once,
        quiet=args.quiet,
        workers=args.workers,
        ready=lambda port: print(f"repro-worker listening on {args.host}:{port}"),
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
