"""The ``repro-worker`` server: one of the paper's MPI slaves, over TCP.

The slave loop of the paper's Fig. 4 script is *receive a message; if it is
empty, stop; otherwise rebuild the problem, compute it and send the results
back to the master*.  This module runs exactly that loop behind a TCP
listening socket so the pool can span real machines: the master-side
:class:`~repro.cluster.backends.remote.RemoteBackend` connects one socket
per worker, ships jobs as length-prefixed XDR frames
(:mod:`repro.serial.frames`) and collects result frames as they come back.

Three entry points:

* :func:`serve` -- run a worker server in the current process (what the
  ``repro-worker`` console script calls);
* :func:`spawn_local_workers` -- the loopback harness: start ``n`` worker
  processes on ``127.0.0.1`` ephemeral ports and hand back their addresses,
  so tests, CI and the examples exercise the remote protocol without any
  external infrastructure;
* :func:`main` -- the ``repro-worker`` command line.

A worker prices jobs through the same
:func:`~repro.cluster.backends.execution.execute_payload` as the sequential
and multiprocessing backends -- including :class:`~repro.pricing.batch.ProblemBatch`
super-jobs and the optional on-disk result cache (``--cache-dir``) -- so
every payload kind that works locally works across the wire.
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import queue
import signal
import socket
import sys
import threading
from typing import Any, Sequence

from repro._version import __version__
from repro.errors import ClusterError, SerializationError
from repro.serial import xdr
from repro.serial.frames import (
    FRAME_AUTH,
    FRAME_CHALLENGE,
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_JOB_BATCH,
    FRAME_PING,
    FRAME_PONG,
    FRAME_RESULT,
    FRAME_RESULT_BATCH,
    FRAME_STOP,
    PROTOCOL_VERSION,
    auth_proof,
    encode_frame,
    read_frame,
    read_frame_versioned,
    verify_proof,
)

__all__ = ["serve", "spawn_local_workers", "LocalWorkerPool", "probe_worker", "main"]

#: environment variable consulted when ``repro-worker --secret`` is absent
SECRET_ENV_VAR = "REPRO_WORKER_SECRET"


def _hello_payload(nonce: bytes, secret: str | None) -> bytes:
    return xdr.encode(
        {
            "role": "repro-worker",
            "pid": os.getpid(),
            "version": PROTOCOL_VERSION,
            # v4 handshake material: the master proves its secret over this
            # nonce; ``auth`` tells secretless masters to fail loudly instead
            # of dispatching jobs a protected worker would silently drop
            "nonce": nonce,
            "auth": secret is not None,
        }
    )


def _result_frame(
    job_id: int, result: Any, elapsed: float, error: str | None,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    try:
        return encode_frame(
            FRAME_RESULT,
            xdr.encode(
                {"job_id": job_id, "result": result, "elapsed": elapsed, "error": error}
            ),
            version=version,
        )
    except SerializationError as exc:
        # a result the codec cannot ship must degrade to an error answer,
        # never kill the worker (the master would redispatch the same
        # poison job through every survivor)
        return encode_frame(
            FRAME_RESULT,
            xdr.encode(
                {
                    "job_id": job_id,
                    "result": None,
                    "elapsed": elapsed,
                    "error": f"result not transmissible: {exc}",
                }
            ),
            version=version,
        )


class _ComputeLane:
    """The pricing half of one connection, on its own thread.

    Since protocol v4 the receive loop must stay responsive while a job
    computes -- an in-campaign liveness :data:`FRAME_PING` that waits behind
    a 30-second Monte-Carlo job looks exactly like a wedged worker to the
    master.  So job frames are queued here and priced off-thread, and the
    receive loop keeps draining the socket (answering pings instantly).
    Results are sent under a lock shared with the receive loop so frames
    never interleave on the wire.

    Since protocol v5 the members of one dispatched :data:`FRAME_JOB_BATCH`
    stay together through the lane: their results coalesce into a single
    :data:`FRAME_RESULT_BATCH` answer when the master's negotiated version
    allows it, and degrade to the classic per-member :data:`FRAME_RESULT`
    frames otherwise (old master, or a batch the codec cannot ship whole).
    """

    def __init__(self, conn: socket.socket, cache: Any, send_lock: threading.Lock):
        self._conn = conn
        self._cache = cache
        self._send_lock = send_lock
        self._jobs: queue.SimpleQueue = queue.SimpleQueue()
        self._dead = False  # set when the socket broke under a result send
        self._thread = threading.Thread(
            target=self._run, name="repro-worker-compute", daemon=True
        )
        self._thread.start()

    def submit(self, job_id: int, payload_kind: str, payload: Any,
               version: int = PROTOCOL_VERSION) -> None:
        """Queue one singly-dispatched job; answered with one result frame."""
        self._jobs.put(("single", [(job_id, payload_kind, payload)], version))

    def submit_batch(self, entries: list[tuple[int, str, Any]],
                     version: int = PROTOCOL_VERSION) -> None:
        """Queue the members of one job-batch frame as a coalescing unit."""
        self._jobs.put(("batch", entries, version))

    def finish(self) -> None:
        """Price everything queued, send the results, then stop the lane."""
        self._jobs.put(None)
        self._thread.join()

    def _send(self, frame: bytes) -> None:
        if self._dead:
            return  # keep draining, but the master is gone
        try:
            with self._send_lock:
                # repro-lint: disable=lock-blocking-call -- _send_lock exists to serialize frame writes on the shared socket; sending outside it would interleave result and pong frames
                self._conn.sendall(frame)
        except OSError:
            self._dead = True

    def _run(self) -> None:
        from repro.cluster.backends.execution import execute_payload

        while True:
            item = self._jobs.get()
            if item is None:
                return
            mode, entries, version = item
            answers = []
            for job_id, payload_kind, payload in entries:
                result, elapsed, error = execute_payload(
                    payload_kind, payload, cache=self._cache
                )
                answers.append(
                    {"job_id": job_id, "result": result,
                     "elapsed": elapsed, "error": error}
                )
            if mode == "batch" and version >= 5:
                try:
                    self._send(
                        encode_frame(
                            FRAME_RESULT_BATCH,
                            xdr.encode({"results": answers}),
                            version=version,
                        )
                    )
                    continue
                except SerializationError:
                    # one untransmissible member poisons the whole coalesced
                    # message: fall back to per-member frames, where
                    # _result_frame degrades only the poisoned result
                    pass
            for answer in answers:
                self._send(
                    _result_frame(
                        answer["job_id"], answer["result"],
                        answer["elapsed"], answer["error"], version=version,
                    )
                )


def _authenticate_master(
    conn: socket.socket, secret: str, nonce: bytes, log
) -> bool:
    """Worker side of the v4 challenge/response; ``True`` iff the peer is in.

    The master must open with a :data:`FRAME_CHALLENGE` whose proof is
    HMAC-SHA256(secret, our hello ``nonce``); we answer its challenge nonce
    the same way.  Liveness probes (:data:`FRAME_PING`) and clean goodbyes
    (:data:`FRAME_STOP`) stay allowed before authentication -- an echo leaks
    nothing -- but no job frame is accepted from an unproven peer.
    """
    while True:
        try:
            frame = read_frame_versioned(conn.recv)
        except SerializationError as exc:
            log(f"dropping connection during handshake: {exc}")
            return False
        if frame is None:
            return False
        kind, payload, header_version = frame
        version = min(header_version, PROTOCOL_VERSION)
        if kind == FRAME_PING:
            conn.sendall(encode_frame(FRAME_PONG, payload, version=version))
            continue
        if kind == FRAME_STOP:
            return False  # clean goodbye; nothing was authenticated
        if kind != FRAME_CHALLENGE:
            log(
                "dropping connection: this worker requires a shared secret "
                f"but the master sent frame kind {kind} instead of a challenge"
            )
            return False
        try:
            challenge = xdr.decode(payload)
            master_nonce = challenge["nonce"]
            proof = challenge["proof"]
        except (SerializationError, KeyError, TypeError, ValueError) as exc:
            log(f"dropping connection on malformed challenge: {exc}")
            return False
        if not isinstance(master_nonce, bytes) or not verify_proof(
            secret, nonce, proof
        ):
            log("dropping connection: master failed the shared-secret handshake")
            return False
        conn.sendall(
            encode_frame(
                FRAME_AUTH,
                xdr.encode({"proof": auth_proof(secret, master_nonce)}),
                version=version,
            )
        )
        return True


def _handle_connection(
    conn: socket.socket, cache: Any, log, secret: str | None = None
) -> bool:
    """Run the slave loop over one master connection.

    Returns ``True`` when the master sent a clean stop frame, ``False`` when
    the connection ended any other way (master died, stream corrupted, or
    the shared-secret handshake failed).
    """
    nonce = os.urandom(16)
    conn.sendall(encode_frame(FRAME_HELLO, _hello_payload(nonce, secret)))
    if secret is not None and not _authenticate_master(conn, secret, nonce, log):
        return False
    send_lock = threading.Lock()
    lane = _ComputeLane(conn, cache, send_lock)
    try:
        while True:
            try:
                frame = read_frame_versioned(conn.recv)
            except SerializationError as exc:
                log(f"dropping connection: {exc}")
                return False
            if frame is None:  # master closed the socket without a stop frame
                return False
            kind, payload, header_version = frame
            # the master stamps its frames at the connection's negotiated
            # version (capped by our hello), so replying at the same version
            # keeps an older master's strict header check satisfied -- and
            # gates whether it can digest coalesced result batches
            version = min(header_version, PROTOCOL_VERSION)
            if kind == FRAME_STOP:
                return True
            if kind == FRAME_PING:
                # keepalive (protocol v3): echo the opaque token straight back
                # -- answered here, off the compute lane, so a master's
                # liveness probe is not stuck behind a long job
                with send_lock:
                    # repro-lint: disable=lock-blocking-call -- the pong must not interleave with a result frame the compute lane is writing; the lock is the write serializer
                    conn.sendall(encode_frame(FRAME_PONG, payload, version=version))
                continue
            if kind == FRAME_CHALLENGE:
                # the master wants an authenticated pool but this worker has
                # no secret: hang up at once so the master fails fast and
                # loud instead of waiting out its handshake timeout
                log(
                    "dropping connection: master requires a shared secret "
                    "but this worker has none (start it with --secret)"
                )
                return False
            if kind not in (FRAME_JOB, FRAME_JOB_BATCH):
                log(f"ignoring unexpected frame kind {kind}")
                continue
            try:
                decoded = xdr.decode(payload)
                # a batch frame is one message carrying a whole chunk; since
                # protocol v5 the chunk also answers as one coalesced
                # FRAME_RESULT_BATCH message (older masters still get one
                # result frame per member)
                entries = decoded["jobs"] if kind == FRAME_JOB_BATCH else [decoded]
                parsed = [
                    (int(entry["job_id"]), entry["kind"], entry["payload"])
                    for entry in entries
                ]
            except (SerializationError, KeyError, TypeError, ValueError) as exc:
                log(f"dropping connection on undecodable job frame: {exc}")
                return False
            if kind == FRAME_JOB_BATCH:
                lane.submit_batch(parsed, version)
            else:
                for job_id, payload_kind, job_payload in parsed:
                    lane.submit(job_id, payload_kind, job_payload, version)
    finally:
        # on a clean stop the queue is already priced (the master collects
        # every result before stopping workers), so this join is instant;
        # on a dirty loss it finishes the in-flight job and bails on send
        lane.finish()


def _make_log(quiet: bool):
    def log(message: str) -> None:
        if not quiet:
            print(f"[repro-worker {os.getpid()}] {message}", file=sys.stderr)

    return log


def _accept_loop(
    server: socket.socket,
    cache_dir: str | None,
    once: bool,
    quiet: bool,
    secret: str | None = None,
) -> None:
    """Accept master connections on an already-listening socket, forever.

    This is the body of one pricing process: with ``repro-worker --workers N``
    every forked child runs this loop on the **same** inherited listening
    socket, so the kernel load-balances incoming master connections across
    the children.
    """
    from repro.cluster.backends.execution import make_worker_cache

    log = _make_log(quiet)
    cache = make_worker_cache(cache_dir)
    while True:
        try:
            conn, peer = server.accept()
        except KeyboardInterrupt:
            log("interrupted, shutting down")
            return
        except OSError as exc:
            # the listening socket was closed under us (teardown, or a
            # sibling process shutting the shared socket down): leave the
            # loop cleanly instead of dying with a traceback
            log(f"listening socket closed ({exc}), shutting down")
            return
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            log(f"master connected from {peer[0]}:{peer[1]}")
            try:
                stopped = _handle_connection(conn, cache, log, secret=secret)
            except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                log(f"connection lost: {exc}")
                stopped = False
            log("connection closed" + (" (stop frame)" if stopped else ""))
        if once:
            return


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: str | None = None,
    once: bool = False,
    ready: Any = None,
    quiet: bool = True,
    workers: int = 1,
    secret: str | None = None,
) -> None:
    """Accept master connections and price their jobs until interrupted.

    ``port=0`` binds an ephemeral port; ``ready`` (a callable) receives the
    actually-bound port once the server is listening.  ``once=True`` exits
    after the first connection ends -- useful for tests and one-shot
    deployments.  ``cache_dir`` opens the shared on-disk result cache every
    other executing backend understands (see :mod:`repro.pricing.cache`).
    ``secret`` arms the protocol-v4 HMAC handshake: every master connection
    must prove knowledge of the shared secret before any job is accepted.

    ``workers=N`` forks ``N`` pricing processes behind the one listening
    socket: each child runs the accept loop on the shared socket, so a
    master that lists the same ``host:port`` address ``N`` times gets ``N``
    genuinely parallel slaves from a single server (with ``once=True`` each
    child exits after its first connection ends).  Requires the ``fork``
    start method (Linux/macOS).
    """
    log = _make_log(quiet)
    if workers < 1:
        raise ClusterError("serve needs workers >= 1")
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(max(8, 2 * workers))
        bound_port = server.getsockname()[1]
        if ready is not None:
            ready(bound_port)
        log(f"listening on {host}:{bound_port} ({workers} pricing process(es))")
        if workers == 1:
            _accept_loop(server, cache_dir, once, quiet, secret)
            return
        if "fork" not in mp.get_all_start_methods():
            raise ClusterError(
                "--workers needs the 'fork' multiprocessing start method to "
                "share the listening socket; run one repro-worker per port "
                "on this platform instead"
            )
        # a SIGTERM on the parent must still tear the children down (the
        # default handler would skip the finally block below)
        try:
            signal.signal(signal.SIGTERM, lambda *_args: sys.exit(0))
        except ValueError:  # pragma: no cover - not in the main thread
            pass
        ctx = mp.get_context("fork")
        children = [
            ctx.Process(
                target=_accept_loop,
                args=(server, cache_dir, once, quiet, secret),
                # daemonic: multiprocessing also reaps them if this parent
                # exits through a path that skips the finally block below
                daemon=True,
            )
            for _ in range(workers)
        ]
        try:
            for child in children:
                child.start()
            for child in children:
                child.join()
        except KeyboardInterrupt:
            log("interrupted, shutting down")
        finally:
            for child in children:
                if child.is_alive():
                    child.terminate()
            for child in children:
                child.join(timeout=5.0)
    finally:
        server.close()


def _spawned_worker(
    index: int,
    host: str,
    port_queue: Any,
    cache_dir: str | None,
    workers: int = 1,
    port: int = 0,
    secret: str | None = None,
) -> None:
    """Entry point of one :func:`spawn_local_workers` process."""
    if workers > 1:
        # lead a fresh process group so LocalWorkerPool.kill() can SIGKILL
        # the whole server -- the accepting parent *and* its forked pricing
        # children -- in one os.killpg() (a plain kill() on the parent would
        # orphan the children onto the shared listening socket)
        try:
            os.setpgid(0, 0)
        except OSError:  # pragma: no cover - already a group leader
            pass
        # a multi-process server cannot be daemonic (it forks children), so
        # if the caller dies without pool.stop() nothing reaps it; watch for
        # reparenting and tear down via the SIGTERM path serve() installs
        import threading as _threading
        import time

        original_ppid = os.getppid()

        def _exit_when_orphaned() -> None:
            while os.getppid() == original_ppid:
                time.sleep(1.0)
            os.kill(os.getpid(), signal.SIGTERM)

        _threading.Thread(target=_exit_when_orphaned, daemon=True).start()
    serve(
        host=host,
        port=port,
        cache_dir=cache_dir,
        workers=workers,
        secret=secret,
        ready=lambda bound: port_queue.put((index, bound)),
    )


class LocalWorkerPool:
    """A handful of loopback worker processes, for tests and examples.

    Iterable/indexable as its ``"host:port"`` address list, usable as a
    context manager (``stop()`` on exit), and deliberately easy to sabotage:
    :meth:`kill` hard-kills one worker so the master's death-recovery path
    can be exercised, and :meth:`restart` brings it back **on the same
    port** so the master's reconnect path can be exercised too.
    """

    def __init__(
        self,
        processes: list[Any],
        hosts: list[str],
        *,
        ctx: Any = None,
        cache_dir: str | None = None,
        workers_per_server: int = 1,
        secret: str | None = None,
    ):
        self._processes = processes
        self.hosts = list(hosts)
        self._ctx = ctx if ctx is not None else mp.get_context()
        self._cache_dir = cache_dir
        self._workers_per_server = workers_per_server
        self._secret = secret

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def __getitem__(self, index: int) -> str:
        return self.hosts[index]

    def kill(self, index: int) -> None:
        """Hard-kill one worker server (simulates a node failure).

        A single-process server dies from one SIGKILL.  A multi-process
        server (``workers_per_server > 1``) leads its own process group, so
        the kill lands on the whole group -- the accepting parent *and* its
        forked pricing children -- instead of silently orphaning the
        children onto the shared listening socket.
        """
        process = self._processes[index]
        if self._workers_per_server > 1 and process.pid is not None:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # already collapsed
                pass
        process.kill()
        process.join(timeout=10.0)

    def restart(self, index: int, *, timeout: float = 30.0) -> str:
        """Respawn a killed worker server on its original port.

        The listening sockets bind with ``SO_REUSEADDR``, so the address in
        ``hosts[index]`` comes straight back -- which is exactly what a
        master-side :class:`~repro.cluster.backends.remote.ReconnectPolicy`
        needs to re-dial.  Returns the (unchanged) ``"host:port"`` address.
        Raises :class:`~repro.errors.ClusterError` if the worker it replaces
        is still alive or the new server does not come up in ``timeout``
        seconds (e.g. another process grabbed the port meanwhile).
        """
        process = self._processes[index]
        if process.is_alive():
            raise ClusterError(
                f"worker {index} ({self.hosts[index]}) is still alive; "
                f"kill() it before restart()"
            )
        host, _, port_text = self.hosts[index].rpartition(":")
        port_queue = self._ctx.Queue()
        replacement = self._ctx.Process(
            target=_spawned_worker,
            args=(
                index,
                host,
                port_queue,
                self._cache_dir,
                self._workers_per_server,
                int(port_text),
                self._secret,
            ),
            daemon=self._workers_per_server == 1,
        )
        replacement.start()
        try:
            port_queue.get(timeout=timeout)
        except Exception:
            replacement.terminate()
            replacement.join(timeout=5.0)
            raise ClusterError(
                f"restarted worker {index} did not come back on "
                f"{self.hosts[index]} within {timeout}s"
            ) from None
        self._processes[index] = replacement
        return self.hosts[index]

    def stop(self) -> None:
        """Terminate every worker process still alive."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.kill()
                process.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def spawn_local_workers(
    n: int,
    *,
    cache_dir: str | None = None,
    start_method: str | None = None,
    timeout: float = 30.0,
    workers_per_server: int = 1,
    secret: str | None = None,
) -> LocalWorkerPool:
    """Start ``n`` worker servers on ``127.0.0.1`` and return their pool.

    Each worker is a real OS process running :func:`serve` on an ephemeral
    port; the call returns once every worker is listening, so a
    ``ValuationSession(backend="remote", backend_options={"hosts": pool.hosts})``
    can connect immediately.  Stop the pool with :meth:`LocalWorkerPool.stop`
    or a ``with`` block.

    ``workers_per_server`` forwards ``serve(workers=N)``: each server forks
    ``N`` pricing processes behind its one listening socket (the
    ``repro-worker --workers N`` deployment).  ``pool.hosts`` still has one
    address per *server*; list an address once per desired connection on the
    master side (e.g. ``hosts=pool.hosts * N``).
    """
    if n < 1:
        raise ClusterError("spawn_local_workers needs n >= 1")
    if workers_per_server < 1:
        raise ClusterError("spawn_local_workers needs workers_per_server >= 1")
    ctx = mp.get_context(start_method) if start_method else mp.get_context()
    port_queue = ctx.Queue()
    processes = []
    try:
        for index in range(n):
            process = ctx.Process(
                target=_spawned_worker,
                args=(index, "127.0.0.1", port_queue, cache_dir, workers_per_server,
                      0, secret),
                # a multi-process server must fork children, which daemonic
                # processes may not do
                daemon=workers_per_server == 1,
            )
            process.start()
            processes.append(process)
        # ports arrive in whichever-bound-first order; key them back to the
        # spawn index so hosts[i] is always the address of _processes[i]
        # (kill(i) must sabotage the worker it names)
        ports: dict[int, int] = {}
        for _ in range(n):
            index, port = port_queue.get(timeout=timeout)
            ports[index] = port
        hosts = [f"127.0.0.1:{ports[index]}" for index in range(n)]
    except Exception:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    pool = LocalWorkerPool(
        processes,
        hosts,
        ctx=ctx,
        cache_dir=cache_dir,
        workers_per_server=workers_per_server,
        secret=secret,
    )
    if workers_per_server > 1:
        # non-daemonic servers would otherwise block multiprocessing's
        # exit-time join if the caller forgets pool.stop(); atexit handlers
        # run LIFO, so this stop() lands before that join
        import atexit

        atexit.register(pool.stop)
    return pool


def probe_worker(address: str, *, timeout: float = 5.0) -> bool:
    """Liveness-probe one worker over a throwaway connection.

    Connects to ``"host:port"``, waits for the worker's HELLO, sends a
    :data:`FRAME_PING` and expects the token echoed back in a
    :data:`FRAME_PONG`, then leaves with a clean stop frame (the worker's
    accept loop survives, exactly like after a campaign).  Returns ``True``
    for a live protocol-compatible worker and ``False`` for anything else:
    refused connection, dead endpoint, timeout, version mismatch.

    This is how an idle daemon (``repro-serve``) notices dead TCP workers
    *between* campaigns instead of at next dispatch; a long-lived
    :class:`~repro.cluster.backends.remote.RemoteBackend` uses
    ``ping_workers()`` on its own live connections instead.
    """
    host, _, port_text = address.rpartition(":")
    token = os.urandom(8)
    try:
        with socket.create_connection((host, int(port_text)), timeout=timeout) as conn:
            conn.settimeout(timeout)
            frame = read_frame(conn.recv)
            if frame is None or frame[0] != FRAME_HELLO:
                return False
            # speak the worker's own hello version so a not-yet-upgraded v3
            # worker still probes as alive (its header check is strict)
            try:
                version = int(xdr.decode(frame[1]).get("version", PROTOCOL_VERSION))
            except (SerializationError, TypeError, ValueError):
                version = PROTOCOL_VERSION
            version = min(version, PROTOCOL_VERSION)
            conn.sendall(encode_frame(FRAME_PING, token, version=version))
            while True:
                frame = read_frame(conn.recv)
                if frame is None:
                    return False
                if frame[0] == FRAME_PONG:
                    if frame[1] != token:
                        return False
                    conn.sendall(encode_frame(FRAME_STOP, version=version))
                    return True
    except (OSError, ValueError, SerializationError):
        return False


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Run one TCP pricing worker (a paper-style MPI slave) "
        "for the remote execution backend.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on (default: loopback only; "
                        "the protocol is unauthenticated, so expose other "
                        "interfaces -- e.g. --host 0.0.0.0 -- only on networks "
                        "you trust)")
    parser.add_argument("--port", type=int, default=9631,
                        help="TCP port to listen on (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fork N pricing processes behind the one "
                        "listening socket; a master that lists this address "
                        "N times gets N parallel slaves (needs the 'fork' "
                        "start method)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="open the shared on-disk result cache in DIR")
    parser.add_argument("--secret", default=None, metavar="SECRET",
                        help="require masters to prove this shared secret in "
                        "an HMAC-SHA256 handshake (protocol v4) before any "
                        f"job is accepted; defaults to ${SECRET_ENV_VAR} "
                        "when set (prefer the environment variable: argv is "
                        "world-readable in `ps`)")
    parser.add_argument("--once", action="store_true",
                        help="exit after the first master connection ends")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-connection log lines")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-worker`` console script."""
    args = build_parser().parse_args(argv)
    secret = args.secret if args.secret is not None else os.environ.get(SECRET_ENV_VAR)
    serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        once=args.once,
        quiet=args.quiet,
        workers=args.workers,
        secret=secret or None,
        ready=lambda port: print(f"repro-worker listening on {args.host}:{port}"),
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
