"""The ``repro-worker`` server: one of the paper's MPI slaves, over TCP.

The slave loop of the paper's Fig. 4 script is *receive a message; if it is
empty, stop; otherwise rebuild the problem, compute it and send the results
back to the master*.  This module runs exactly that loop behind a TCP
listening socket so the pool can span real machines: the master-side
:class:`~repro.cluster.backends.remote.RemoteBackend` connects one socket
per worker, ships jobs as length-prefixed XDR frames
(:mod:`repro.serial.frames`) and collects result frames as they come back.

Three entry points:

* :func:`serve` -- run a worker server in the current process (what the
  ``repro-worker`` console script calls);
* :func:`spawn_local_workers` -- the loopback harness: start ``n`` worker
  processes on ``127.0.0.1`` ephemeral ports and hand back their addresses,
  so tests, CI and the examples exercise the remote protocol without any
  external infrastructure;
* :func:`main` -- the ``repro-worker`` command line.

A worker prices jobs through the same
:func:`~repro.cluster.backends.execution.execute_payload` as the sequential
and multiprocessing backends -- including :class:`~repro.pricing.batch.ProblemBatch`
super-jobs and the optional on-disk result cache (``--cache-dir``) -- so
every payload kind that works locally works across the wire.
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import socket
import sys
from typing import Any, Sequence

from repro._version import __version__
from repro.errors import ClusterError, SerializationError
from repro.serial import xdr
from repro.serial.frames import (
    FRAME_HELLO,
    FRAME_JOB,
    FRAME_STOP,
    FRAME_RESULT,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
)

__all__ = ["serve", "spawn_local_workers", "LocalWorkerPool", "main"]


def _hello_payload() -> bytes:
    return xdr.encode(
        {"role": "repro-worker", "pid": os.getpid(), "version": PROTOCOL_VERSION}
    )


def _handle_connection(conn: socket.socket, cache: Any, log) -> bool:
    """Run the slave loop over one master connection.

    Returns ``True`` when the master sent a clean stop frame, ``False`` when
    the connection ended any other way (master died, stream corrupted).
    """
    from repro.cluster.backends.execution import execute_payload

    conn.sendall(encode_frame(FRAME_HELLO, _hello_payload()))
    while True:
        try:
            frame = read_frame(conn.recv)
        except SerializationError as exc:
            log(f"dropping connection: {exc}")
            return False
        if frame is None:  # master closed the socket without a stop frame
            return False
        kind, payload = frame
        if kind == FRAME_STOP:
            return True
        if kind != FRAME_JOB:
            log(f"ignoring unexpected frame kind {kind}")
            continue
        try:
            job = xdr.decode(payload)
            job_id = int(job["job_id"])
            payload_kind = job["kind"]
            job_payload = job["payload"]
        except (SerializationError, KeyError, TypeError, ValueError) as exc:
            log(f"dropping connection on undecodable job frame: {exc}")
            return False
        result, elapsed, error = execute_payload(payload_kind, job_payload, cache=cache)
        try:
            frame = encode_frame(
                FRAME_RESULT,
                xdr.encode(
                    {"job_id": job_id, "result": result, "elapsed": elapsed, "error": error}
                ),
            )
        except SerializationError as exc:
            # a result the codec cannot ship must degrade to an error answer,
            # never kill the worker (the master would redispatch the same
            # poison job through every survivor)
            frame = encode_frame(
                FRAME_RESULT,
                xdr.encode(
                    {
                        "job_id": job_id,
                        "result": None,
                        "elapsed": elapsed,
                        "error": f"result not transmissible: {exc}",
                    }
                ),
            )
        conn.sendall(frame)


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: str | None = None,
    once: bool = False,
    ready: Any = None,
    quiet: bool = True,
) -> None:
    """Accept master connections and price their jobs until interrupted.

    ``port=0`` binds an ephemeral port; ``ready`` (a callable) receives the
    actually-bound port once the server is listening.  ``once=True`` exits
    after the first connection ends -- useful for tests and one-shot
    deployments.  ``cache_dir`` opens the shared on-disk result cache every
    other executing backend understands (see :mod:`repro.pricing.cache`).
    """
    from repro.cluster.backends.execution import make_worker_cache

    def log(message: str) -> None:
        if not quiet:
            print(f"[repro-worker {os.getpid()}] {message}", file=sys.stderr)

    cache = make_worker_cache(cache_dir)
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(8)
        bound_port = server.getsockname()[1]
        if ready is not None:
            ready(bound_port)
        log(f"listening on {host}:{bound_port}")
        while True:
            try:
                conn, peer = server.accept()
            except KeyboardInterrupt:
                log("interrupted, shutting down")
                return
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                log(f"master connected from {peer[0]}:{peer[1]}")
                try:
                    stopped = _handle_connection(conn, cache, log)
                except (BrokenPipeError, ConnectionResetError, OSError) as exc:
                    log(f"connection lost: {exc}")
                    stopped = False
                log("connection closed" + (" (stop frame)" if stopped else ""))
            if once:
                return
    finally:
        server.close()


def _spawned_worker(
    index: int, host: str, port_queue: Any, cache_dir: str | None
) -> None:
    """Entry point of one :func:`spawn_local_workers` process."""
    serve(
        host=host,
        port=0,
        cache_dir=cache_dir,
        ready=lambda port: port_queue.put((index, port)),
    )


class LocalWorkerPool:
    """A handful of loopback worker processes, for tests and examples.

    Iterable/indexable as its ``"host:port"`` address list, usable as a
    context manager (``stop()`` on exit), and deliberately easy to sabotage:
    :meth:`kill` hard-kills one worker so the master's death-recovery path
    can be exercised.
    """

    def __init__(self, processes: list[Any], hosts: list[str]):
        self._processes = processes
        self.hosts = list(hosts)

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def __getitem__(self, index: int) -> str:
        return self.hosts[index]

    def kill(self, index: int) -> None:
        """Hard-kill one worker process (simulates a node failure)."""
        self._processes[index].kill()
        self._processes[index].join(timeout=10.0)

    def stop(self) -> None:
        """Terminate every worker process still alive."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.kill()
                process.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def spawn_local_workers(
    n: int,
    *,
    cache_dir: str | None = None,
    start_method: str | None = None,
    timeout: float = 30.0,
) -> LocalWorkerPool:
    """Start ``n`` worker servers on ``127.0.0.1`` and return their pool.

    Each worker is a real OS process running :func:`serve` on an ephemeral
    port; the call returns once every worker is listening, so a
    ``ValuationSession(backend="remote", backend_options={"hosts": pool.hosts})``
    can connect immediately.  Stop the pool with :meth:`LocalWorkerPool.stop`
    or a ``with`` block.
    """
    if n < 1:
        raise ClusterError("spawn_local_workers needs n >= 1")
    ctx = mp.get_context(start_method) if start_method else mp.get_context()
    port_queue = ctx.Queue()
    processes = []
    try:
        for index in range(n):
            process = ctx.Process(
                target=_spawned_worker,
                args=(index, "127.0.0.1", port_queue, cache_dir),
                daemon=True,
            )
            process.start()
            processes.append(process)
        # ports arrive in whichever-bound-first order; key them back to the
        # spawn index so hosts[i] is always the address of _processes[i]
        # (kill(i) must sabotage the worker it names)
        ports: dict[int, int] = {}
        for _ in range(n):
            index, port = port_queue.get(timeout=timeout)
            ports[index] = port
        hosts = [f"127.0.0.1:{ports[index]}" for index in range(n)]
    except Exception:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    return LocalWorkerPool(processes, hosts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Run one TCP pricing worker (a paper-style MPI slave) "
        "for the remote execution backend.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to listen on (default: loopback only; "
                        "the protocol is unauthenticated, so expose other "
                        "interfaces -- e.g. --host 0.0.0.0 -- only on networks "
                        "you trust)")
    parser.add_argument("--port", type=int, default=9631,
                        help="TCP port to listen on (0 picks an ephemeral port)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="open the shared on-disk result cache in DIR")
    parser.add_argument("--once", action="store_true",
                        help="exit after the first master connection ends")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-connection log lines")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-worker`` console script."""
    args = build_parser().parse_args(argv)
    serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        once=args.once,
        quiet=args.quiet,
        ready=lambda port: print(f"repro-worker listening on {args.host}:{port}"),
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
